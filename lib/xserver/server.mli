(** The simulated X display server.

    One [Server.t] models one display: a window tree rooted at a screen-
    sized root window, an atom table, per-client connections with event
    queues, selections, a pointer and a keyboard. Clients talk to it
    through {!connection} values; every call that would be an X protocol
    request increments that connection's request counters, so the traffic
    saved by Tk's caches (paper §3.3) is directly measurable. Calls marked
    "round trip" are those that block on a reply in real X.

    Input is injected with the [inject_*] functions, which synthesize the
    event stream a real server would produce (Enter/Leave on crossings,
    Motion, key events to the focus window). *)

type t

type connection

(** Request counters for one connection. *)
type stats = {
  mutable total_requests : int;
  mutable round_trips : int;
  mutable resource_allocs : int;  (** colors, fonts, cursors, bitmaps *)
  mutable window_requests : int;
  mutable draw_requests : int;
  mutable property_requests : int;
}

val create : ?width:int -> ?height:int -> unit -> t
(** A display whose root window has the given size (default 1024x768). *)

val connect : t -> name:string -> connection
(** Open a client connection ([name] is for diagnostics). *)

val close : connection -> unit
(** Orderly shutdown: destroys every window the client created (as the X
    server does, deepest first — surviving owners of nested windows get
    their [Destroy_notify]), releases the selections and focus it held,
    refuses its unanswered selection conversions, notifies survivors of
    the vanished top-level windows, and drops its queue. Any further
    request on the connection raises [BadConnection]. *)

val kill_connection : connection -> unit
(** Abrupt crash: same reaping as {!close}, but the connection is marked
    as crashed — the simulation of a client dying mid-session rather
    than exiting. Distinct from {!close} only in intent (and in
    {!connection_crashed}); both leave the connection dead. *)

val connection_alive : connection -> bool

val connection_crashed : connection -> bool
(** Dead by {!kill_connection} (or the crash plan) rather than {!close}. *)

val set_crash_plan : connection -> at_request:int -> unit
(** Arm a scriptable crash: the connection dies (as by
    {!kill_connection}) the moment its total request count reaches
    [at_request], and that request raises [BadConnection]. [0] disarms.
    Deterministic: same request stream, same point of death — the
    crash-lifecycle analogue of {!set_fault_plan}. *)

val crash_plan : connection -> int
(** The armed [at_request] threshold (0 = disarmed). *)

val root : t -> Xid.t
val root_window : t -> Window.t
val server_of : connection -> t
val connection_name : connection -> string
val connection_id : connection -> int
val stats : connection -> stats
val reset_stats : connection -> unit

val time : t -> int
(** The server's logical clock (ms). It advances on every request and
    injected input event. *)

val advance_time : t -> int -> unit
(** Advance the logical clock (used to simulate delays, e.g. for testing
    double-click timeouts). *)

(** {1 Errors and fault injection}

    Requests that name a dead resource raise {!Xerror.X_error} (e.g.
    [BadWindow] for operations on a destroyed window) instead of
    succeeding silently. In addition, a deterministic fault-injection
    plan can make the server reject otherwise-valid requests, to test
    that every layer above the protocol degrades gracefully. Rejected
    requests are still counted in the connection's {!stats}. *)

(** Request classes, used for per-class accounting and for scoping
    injected faults ([Resource] = color/font/cursor/bitmap/GC allocation). *)
type req_kind = Resource | Window_op | Draw | Property | Other

val kind_name : req_kind -> string
(** ["resource"], ["window"], ["draw"], ["property"], ["other"]. *)

(** {1 Wire tracing}

    Each connection carries a bounded ring of {!Trace.record}s. While
    tracing is enabled, every protocol request appends one record
    (serial, class, resource, logical timestamp, outcome); the ring
    overwrites its oldest entry once full, so tracing can stay on for a
    whole session. Requests made while tracing is off are only counted
    in {!stats}, not traced. *)

val set_tracing : ?capacity:int -> connection -> bool -> unit
(** Enable/disable tracing. [capacity] (default {!Trace.default_capacity})
    resizes the ring, discarding existing records, when it differs from
    the current capacity. *)

val tracing : connection -> bool

val trace : connection -> req_kind Trace.record list
(** The ring's contents, oldest first. *)

val trace_length : connection -> int

val clear_trace : connection -> unit

val trace_dump : connection -> string
(** Human-readable table: serial, timestamp, class, resource, outcome. *)

val set_fault_plan :
  t -> ?seed:int -> ?fail_every_nth:int -> ?fail_kind:req_kind -> unit -> unit
(** Arm the plan: every [fail_every_nth]-th request (phase-shifted by
    [seed]) raises an {!Xerror.X_error} whose code matches the request
    class ([Resource] → [BadAlloc], [Window_op] → [BadWindow], [Draw] →
    [BadMatch], [Property] → [BadAtom], [Other] → [BadValue]). With
    [fail_kind], only that class is eligible. [fail_every_nth = 0]
    disables periodic injection. Deterministic: same seed, same request
    stream, same faults. *)

val script_fault : t -> Xerror.code -> unit
(** Queue a one-shot failure: the next eligible request raises [code].
    Scripted faults fire before the periodic plan and may be queued in
    sequence. *)

val clear_faults : t -> unit
(** Disarm periodic and scripted injection (counters are kept). *)

val faults_injected : t -> int
(** Faults the plan has raised. *)

val faults_absorbed : t -> int
(** Injected faults that some layer above caught and degraded around
    (via {!note_absorbed}). A healthy stack keeps this equal to
    {!faults_injected}. *)

val note_absorbed : t -> Xerror.info -> unit
(** Record that an [X_error] was absorbed. Counts only injected faults,
    so genuine errors (e.g. a send to a dead peer) don't skew the
    injected/absorbed invariant. *)

val reset_fault_counters : t -> unit

(** {1 Atoms} *)

val intern_atom : connection -> string -> Atom.t
(** Round trip. *)

val atom_name : connection -> Atom.t -> string option
(** Round trip. *)

(** {1 Windows} *)

val create_window :
  connection ->
  parent:Xid.t ->
  x:int ->
  y:int ->
  width:int ->
  height:int ->
  border_width:int ->
  Xid.t
(** @raise Failure if [parent] does not exist. *)

val destroy_window : connection -> Xid.t -> unit
(** Destroys the window and all descendants; each creating connection
    receives a [Destroy_notify] per destroyed window. *)

val map_window : connection -> Xid.t -> unit
(** Maps the window; delivers [Map_notify] and an [Expose] if it becomes
    viewable. *)

val unmap_window : connection -> Xid.t -> unit

val configure_window :
  connection ->
  ?x:int ->
  ?y:int ->
  ?width:int ->
  ?height:int ->
  ?border_width:int ->
  Xid.t ->
  unit
(** Move/resize; delivers [Configure_notify] (and [Expose] on resize of a
    viewable window). *)

val raise_window : connection -> Xid.t -> unit
val lower_window : connection -> Xid.t -> unit
val set_window_background : connection -> Xid.t -> Color.t -> unit
val set_window_border : connection -> Xid.t -> Color.t -> unit
val set_window_cursor : connection -> Xid.t -> Cursor.t option -> unit
val set_override_redirect : connection -> Xid.t -> bool -> unit

val lookup_window : t -> Xid.t -> Window.t option

val window_exists : connection -> Xid.t -> bool
(** Round trip: does the window still exist? The liveness ping used by
    [send] to distinguish a dead peer from a merely unresponsive one. *)

val query_geometry : connection -> Xid.t -> Geom.rect option
(** Round trip: window geometry in parent coordinates. The Tk structure
    cache exists to avoid this call. *)

val query_pointer : connection -> Geom.point
(** Round trip: pointer position in root coordinates. *)

(** {1 Resources (round trips; the targets of Tk's resource cache)} *)

val alloc_color : connection -> string -> Color.t option
val open_font : connection -> string -> Font.t option
val alloc_cursor : connection -> string -> Cursor.t option
val alloc_bitmap : connection -> string -> Bitmap.t option

val create_gc :
  connection ->
  ?foreground:Color.t ->
  ?background:Color.t ->
  ?font:Font.t ->
  ?line_width:int ->
  ?stipple:Bitmap.t ->
  unit ->
  Gcontext.t

(** {1 Properties} *)

val change_property :
  connection -> Xid.t -> prop:Atom.t -> ptype:Atom.t -> string -> unit
(** Set a property; [Property_notify] goes to the window's owner and to
    registered listeners. *)

val append_property :
  connection -> Xid.t -> prop:Atom.t -> ptype:Atom.t -> string -> unit
(** X's [PropModeAppend]: atomically append [data] to the property's
    current contents (creating it when absent). This is how Tk's [send]
    posts requests — appends never overwrite an unread predecessor, so
    bursts from many senders queue up losslessly on the wire. *)

val get_property : connection -> Xid.t -> prop:Atom.t -> Window.prop option
(** Round trip. *)

val delete_property : connection -> Xid.t -> prop:Atom.t -> unit

val listen_property : connection -> Xid.t -> unit
(** Register interest in [Property_notify] events on a window this
    connection does not own (X's PropertyChangeMask on another client's
    window — how [send] watches the registry). *)

(** {1 Selections} *)

val set_selection_owner : connection -> selection:Atom.t -> Xid.t -> unit
(** The previous owner (if any) receives [Selection_clear]. Passing
    [Xid.none] relinquishes ownership. *)

val get_selection_owner : connection -> selection:Atom.t -> Xid.t
(** Round trip; {!Xid.none} when unowned. *)

val convert_selection :
  connection ->
  selection:Atom.t ->
  target:Atom.t ->
  property:Atom.t ->
  requestor:Xid.t ->
  unit
(** Ask the selection owner to convert: the owner's connection receives
    [Selection_request]; if the selection is unowned the requestor
    immediately receives a refusing [Selection_notify]. *)

val send_selection_notify :
  connection ->
  requestor:Xid.t ->
  selection:Atom.t ->
  target:Atom.t ->
  property:Atom.t option ->
  data:string option ->
  unit
(** The owner's reply: stores [data] in the property on the requestor
    window (if accepted) and delivers [Selection_notify]. *)

(** {1 Drawing (retained in per-window keyed display lists)}

    Every draw call takes an optional [?key]: ops land in the window's
    keyed op store ({!Window.ops}) and the rasterizer paints keys in
    ascending order. Omitting the key assigns a fresh auto key per op
    (plain append order — what the simple widgets want). A client that
    keys its ops (the canvas keys each item by its display serial) can
    later replace just that group with {!clear_keyed} + re-draw, which is
    the wire-level damage repaint: O(changed ops), not a full
    {!clear_window} + redraw. *)

val clear_window : connection -> Xid.t -> unit

val clear_keyed : connection -> Xid.t -> int -> unit
(** Drop the retained ops under one key (counted as a Draw request). *)

val fill_rect : ?key:int -> connection -> Xid.t -> Gcontext.t -> Geom.rect -> unit
val draw_rect : ?key:int -> connection -> Xid.t -> Gcontext.t -> Geom.rect -> unit

val draw_text :
  ?key:int -> connection -> Xid.t -> Gcontext.t -> x:int -> y:int -> string -> unit
(** [y] is the text baseline, per X convention. *)

val draw_line :
  ?key:int ->
  connection -> Xid.t -> Gcontext.t -> x1:int -> y1:int -> x2:int -> y2:int -> unit

val stipple_rect : ?key:int -> connection -> Xid.t -> Gcontext.t -> Geom.rect -> unit

val draw_relief :
  ?key:int -> connection -> Xid.t -> Geom.rect -> raised:bool -> width:int -> unit
(** Tk-style 3-D border (drawn by widgets with two GCs in real Tk; modelled
    as one request here). *)

(** {1 Focus} *)

val set_input_focus : connection -> Xid.t -> unit
(** [Focus_out]/[Focus_in] are delivered to the old and new focus
    windows. Passing {!Xid.none} reverts to pointer-root focus. *)

val get_input_focus : connection -> Xid.t
(** Round trip. *)

(** {1 Event queues} *)

val next_event : connection -> Event.delivery option
val pending : connection -> int

val send_event : connection -> Xid.t -> Event.t -> unit
(** Deliver a synthetic event to a window's owner (X's XSendEvent). *)

(** {1 Input injection (test/driver side — not client requests)} *)

val inject_motion : t -> x:int -> y:int -> unit
(** Move the pointer to root coordinates (x, y): generates Leave/Enter on
    window crossings and a Motion event in the pointer window. *)

val inject_button : t -> button:int -> pressed:bool -> unit
(** Press/release a pointer button at the current pointer position. *)

val inject_key : t -> keysym:string -> pressed:bool -> unit
(** Press/release a key: delivered to the focus window (or the pointer
    window under pointer-root focus). Modifier keysyms (Shift_L,
    Control_L, Meta_L, Alt_L) update the modifier state. *)

val inject_string : t -> string -> unit
(** Convenience: type a string, one key press/release pair per char. *)

val pointer_window : t -> Xid.t
(** The window currently containing the pointer. *)
