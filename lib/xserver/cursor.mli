(** The server's cursor font: the standard X11 cursor names (the paper's
    example is [coffee_mug]). Opening a cursor is a server request, so Tk
    caches them by name. *)

type t = { name : string; glyph : int }

val parse : string -> t option

val fallback : t
(** The default pointer ([left_ptr]); what a degraded cursor lookup
    yields when the server request fails. *)

val names : unit -> string list
