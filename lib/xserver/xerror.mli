(** Typed X protocol errors.

    Real X servers reject bad requests with an error event carrying an
    error code, the offending resource id and the sequence number of the
    failed request; Xlib turns these into calls to an error handler. The
    simulation models that with a single OCaml exception, {!X_error},
    raised synchronously by the request that failed. Layers above the
    protocol (the resource cache, the Tk intrinsics) are expected to
    absorb these errors and degrade — never to let one kill the process.

    Errors can be genuine (e.g. operating on a destroyed window) or
    {e injected} by the fault-injection plan on {!Server.t}; the
    [injected] flag lets absorption accounting distinguish the two. *)

type code =
  | BadWindow  (** the window id names no live window *)
  | BadAlloc  (** the server could not allocate the resource *)
  | BadAtom
  | BadValue
  | BadMatch
  | BadName  (** a named resource (color, cursor) does not exist *)
  | BadFont
  | BadConnection
      (** the connection is dead: the client closed it or crashed (real
          Xlib reports this as an I/O error, not a protocol error; the
          simulation folds both into one typed exception) *)

type info = {
  code : code;
  resource : Xid.t;  (** offending resource id ({!Xid.none} if not known) *)
  serial : int;  (** the connection's request sequence number *)
  injected : bool;  (** raised by the fault-injection plan, not a real bug *)
}

exception X_error of info

val code_name : code -> string

val describe : info -> string
(** One-line rendering, e.g.
    ["X protocol error: BadWindow (resource 0x2a, serial 17)"]. *)

val raise_error :
  ?resource:Xid.t -> ?serial:int -> ?injected:bool -> code -> 'a
