type code =
  | BadWindow
  | BadAlloc
  | BadAtom
  | BadValue
  | BadMatch
  | BadName
  | BadFont
  | BadConnection

type info = {
  code : code;
  resource : Xid.t;
  serial : int;
  injected : bool;
}

exception X_error of info

let code_name = function
  | BadWindow -> "BadWindow"
  | BadAlloc -> "BadAlloc"
  | BadAtom -> "BadAtom"
  | BadValue -> "BadValue"
  | BadMatch -> "BadMatch"
  | BadName -> "BadName"
  | BadFont -> "BadFont"
  | BadConnection -> "BadConnection"

let describe e =
  Printf.sprintf "X protocol error: %s (resource 0x%x, serial %d)%s"
    (code_name e.code) e.resource e.serial
    (if e.injected then " [injected]" else "")

let raise_error ?(resource = Xid.none) ?(serial = 0) ?(injected = false) code =
  raise (X_error { code; resource; serial; injected })

(* Register a readable rendering so an escaped X_error prints usefully in
   backtraces and test failures. *)
let () =
  Printexc.register_printer (function
    | X_error e -> Some (describe e)
    | _ -> None)
