type stats = {
  mutable total_requests : int;
  mutable round_trips : int;
  mutable resource_allocs : int;
  mutable window_requests : int;
  mutable draw_requests : int;
  mutable property_requests : int;
}

type req_kind = Resource | Window_op | Draw | Property | Other

(* Deterministic fault-injection plan: a seeded modulo counter plus an
   optional kind filter and a FIFO of one-shot scripted failures. The
   injected/absorbed pair is the invariant the robustness tests check:
   every fault the plan raises must be absorbed by some layer above. *)
type fault_plan = {
  mutable fail_every_nth : int; (* 0 = disabled *)
  mutable fail_kind : req_kind option; (* None = any request class *)
  mutable fault_seed : int;
  mutable fault_tick : int;
  mutable scripted : Xerror.code list;
  mutable injected : int;
  mutable absorbed : int;
}

(* A selection conversion the owner has been asked to perform but has not
   yet answered. Tracked so that when the owner's connection dies, the
   requestor receives a refusing SelectionNotify instead of waiting
   forever. *)
type pending_convert = {
  pc_selection : Atom.t;
  pc_target : Atom.t;
  pc_requestor : Xid.t;
  pc_owner_cid : int;
}

type t = {
  xids : Xid.allocator;
  atoms : Atom.table;
  root_win : Window.t;
  windows : (Xid.t, Window.t) Hashtbl.t;
  connections : (int, connection) Hashtbl.t; (* cid -> live connection *)
  mutable next_cid : int;
  mutable clock : int;
  selections : (Atom.t, Xid.t) Hashtbl.t;
  mutable pending_converts : pending_convert list;
  mutable pointer : Geom.point;
  mutable pointer_win : Xid.t;
  mutable focus : Xid.t; (* Xid.none = pointer-root focus *)
  mutable mod_state : Event.state;
  mutable buttons_down : int list;
  faults : fault_plan;
}

and connection = {
  cid : int;
  cname : string;
  server : t;
  queue : Event.delivery Queue.t;
  cstats : stats;
  mutable dead : bool;
  mutable crashed : bool; (* dead by crash, not orderly close *)
  mutable crash_at : int; (* crash plan: die at this request number; 0 = off *)
  mutable tracing : bool;
  mutable trace : req_kind Trace.t;
}

let new_stats () =
  {
    total_requests = 0;
    round_trips = 0;
    resource_allocs = 0;
    window_requests = 0;
    draw_requests = 0;
    property_requests = 0;
  }

let create ?(width = 1024) ?(height = 768) () =
  let xids = Xid.allocator () in
  let root_id = Xid.fresh xids in
  let root_win =
    Window.create ~id:root_id ~owner_cid:0 ~parent:None ~x:0 ~y:0 ~width
      ~height ~border_width:0
  in
  root_win.Window.mapped <- true;
  root_win.Window.background <- Some Color.white;
  let windows = Hashtbl.create 64 in
  Hashtbl.replace windows root_id root_win;
  {
    xids;
    atoms = Atom.table ();
    root_win;
    windows;
    connections = Hashtbl.create 8;
    next_cid = 1;
    clock = 0;
    selections = Hashtbl.create 4;
    pending_converts = [];
    (* Park the pointer in the far corner so freshly mapped windows don't
       receive a spurious Enter. *)
    pointer = { Geom.x = width - 1; y = height - 1 };
    pointer_win = root_id;
    focus = Xid.none;
    mod_state = Event.empty_state;
    buttons_down = [];
    faults =
      {
        fail_every_nth = 0;
        fail_kind = None;
        fault_seed = 0;
        fault_tick = 0;
        scripted = [];
        injected = 0;
        absorbed = 0;
      };
  }

let connect server ~name =
  let conn =
    {
      cid = server.next_cid;
      cname = name;
      server;
      queue = Queue.create ();
      cstats = new_stats ();
      dead = false;
      crashed = false;
      crash_at = 0;
      tracing = false;
      trace = Trace.create ();
    }
  in
  server.next_cid <- server.next_cid + 1;
  Hashtbl.replace server.connections conn.cid conn;
  conn

let root t = t.root_win.Window.id
let root_window t = t.root_win
let server_of conn = conn.server
let connection_name conn = conn.cname
let connection_id conn = conn.cid
let stats conn = conn.cstats

let reset_stats conn =
  let s = conn.cstats in
  s.total_requests <- 0;
  s.round_trips <- 0;
  s.resource_allocs <- 0;
  s.window_requests <- 0;
  s.draw_requests <- 0;
  s.property_requests <- 0

let time t = t.clock
let advance_time t ms = t.clock <- t.clock + max 0 ms

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let set_fault_plan t ?(seed = 0) ?(fail_every_nth = 0) ?fail_kind () =
  let p = t.faults in
  p.fail_every_nth <- fail_every_nth;
  p.fail_kind <- fail_kind;
  p.fault_seed <- seed;
  p.fault_tick <- 0

let script_fault t code = t.faults.scripted <- t.faults.scripted @ [ code ]

let clear_faults t =
  let p = t.faults in
  p.fail_every_nth <- 0;
  p.fail_kind <- None;
  p.scripted <- [];
  p.fault_tick <- 0

let faults_injected t = t.faults.injected
let faults_absorbed t = t.faults.absorbed

let reset_fault_counters t =
  t.faults.injected <- 0;
  t.faults.absorbed <- 0

let note_absorbed t (e : Xerror.info) =
  if e.Xerror.injected then begin
    t.faults.absorbed <- t.faults.absorbed + 1;
    (* Upgrade the trace record of the absorbed request. The serial is
       per-connection, so stop at the first tracing connection that still
       holds a matching injected-fault record. *)
    let flipped = ref false in
    Hashtbl.iter
      (fun _ c ->
        if (not !flipped) && c.tracing then
          flipped := Trace.mark_absorbed c.trace ~serial:e.Xerror.serial)
      t.connections
  end

(* The error code a rejected request of each class would carry. *)
let code_for_kind = function
  | Resource -> Xerror.BadAlloc
  | Window_op -> Xerror.BadWindow
  | Draw -> Xerror.BadMatch
  | Property -> Xerror.BadAtom
  | Other -> Xerror.BadValue

let kind_matches plan kind =
  match plan.fail_kind with None -> true | Some k -> k = kind

let maybe_inject conn kind resource =
  let plan = conn.server.faults in
  let serial = conn.cstats.total_requests in
  match plan.scripted with
  | code :: rest when kind_matches plan kind ->
    plan.scripted <- rest;
    plan.injected <- plan.injected + 1;
    Xerror.raise_error ~resource ~serial ~injected:true code
  | _ ->
    if plan.fail_every_nth > 0 && kind_matches plan kind then begin
      plan.fault_tick <- plan.fault_tick + 1;
      if (plan.fault_tick + plan.fault_seed) mod plan.fail_every_nth = 0
      then begin
        plan.injected <- plan.injected + 1;
        Xerror.raise_error ~resource ~serial ~injected:true
          (code_for_kind kind)
      end
    end

let lookup_window t id = Hashtbl.find_opt t.windows id

let window_exn conn id =
  match lookup_window conn.server id with
  | Some w -> w
  | None ->
    Xerror.raise_error ~resource:id ~serial:conn.cstats.total_requests
      Xerror.BadWindow

let find_connection t cid = Hashtbl.find_opt t.connections cid

let deliver_to_cid t ~cid ~window event =
  match find_connection t cid with
  | Some conn when not conn.dead ->
    Queue.add { Event.window; time = t.clock; event } conn.queue
  | Some _ | None -> ()

(* Deliver an event for a window to its owner connection. *)
let deliver t win event =
  deliver_to_cid t ~cid:win.Window.owner_cid ~window:win.Window.id event

(* Root-window SubstructureNotify approximation: tell every surviving
   client about a structural change it did not cause itself. *)
let broadcast_survivors t ~except_cid ~window event =
  Hashtbl.iter
    (fun _ c ->
      if c.cid <> except_cid && not c.dead then
        Queue.add { Event.window; time = t.clock; event } c.queue)
    t.connections

(* ------------------------------------------------------------------ *)
(* Pointer bookkeeping shared by window operations and input *)

let expose_event w =
  Event.Expose
    { ex = 0; ey = 0; ewidth = w.Window.width; eheight = w.Window.height; count = 0 }

(* Recompute which window contains the pointer, emitting Leave/Enter. *)
let update_pointer_window t =
  let target =
    match Window.window_at t.root_win t.pointer with
    | Some w -> w.Window.id
    | None -> t.root_win.Window.id
  in
  if target <> t.pointer_win then begin
    let state = t.mod_state in
    (match lookup_window t t.pointer_win with
    | Some old when not old.Window.destroyed ->
      deliver t old (Event.Leave { crossing_state = state })
    | Some _ | None -> ());
    t.pointer_win <- target;
    match lookup_window t target with
    | Some w -> deliver t w (Event.Enter { crossing_state = state })
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Connection death: orderly close and abrupt crash *)

(* Selection conversions the dying client was asked to perform are
   refused, so a requestor blocked on SelectionNotify unblocks instead of
   waiting out its timeout. *)
let refuse_pending_converts t cid =
  let mine, rest =
    List.partition (fun pc -> pc.pc_owner_cid = cid) t.pending_converts
  in
  t.pending_converts <- rest;
  List.iter
    (fun pc ->
      match lookup_window t pc.pc_requestor with
      | Some req_win ->
        deliver t req_win
          (Event.Selection_notify
             {
               sn_selection = pc.pc_selection;
               sn_target = pc.pc_target;
               sn_property = None;
               sn_requestor = pc.pc_requestor;
             })
      | None -> ())
    mine

(* Reap everything a dead client left behind, exactly as the X server
   does when a connection drops: destroy its windows (deepest first,
   notifying surviving owners of nested windows), release the selections
   and focus they held, refuse its unanswered selection conversions, and
   tell surviving clients what disappeared. *)
let reap_connection conn =
  let t = conn.server in
  conn.dead <- true;
  Queue.clear conn.queue;
  Hashtbl.remove t.connections conn.cid;
  (* Top-most windows owned by the client: every other window it owned is
     a descendant of one of these and dies with the subtree. *)
  let tops =
    Hashtbl.fold
      (fun _ w acc ->
        if
          w.Window.owner_cid = conn.cid
          && (match w.Window.parent with
             | None -> true
             | Some p -> p.Window.owner_cid <> conn.cid)
        then w :: acc
        else acc)
      t.windows []
  in
  List.iter
    (fun top ->
      let doomed = Window.descendants top in
      List.iter
        (fun d ->
          d.Window.destroyed <- true;
          d.Window.mapped <- false;
          (* A surviving client with a window nested inside the dead
             client's tree still receives its DestroyNotify. *)
          deliver t d Event.Destroy_notify;
          Hashtbl.remove t.windows d.Window.id;
          Hashtbl.iter
            (fun sel owner ->
              if owner = d.Window.id then begin
                Hashtbl.remove t.selections sel;
                broadcast_survivors t ~except_cid:conn.cid
                  ~window:d.Window.id
                  (Event.Selection_clear { selection = sel })
              end)
            (Hashtbl.copy t.selections);
          if t.focus = d.Window.id then t.focus <- Xid.none)
        (List.rev doomed);
      Window.unlink top;
      broadcast_survivors t ~except_cid:conn.cid ~window:top.Window.id
        Event.Destroy_notify)
    tops;
  refuse_pending_converts t conn.cid;
  update_pointer_window t

let close conn = if not conn.dead then reap_connection conn

let kill_connection conn =
  if not conn.dead then begin
    conn.crashed <- true;
    reap_connection conn
  end

let set_crash_plan conn ~at_request = conn.crash_at <- max 0 at_request
let crash_plan conn = conn.crash_at
let connection_alive conn = not conn.dead
let connection_crashed conn = conn.crashed

let dead_conn_error conn =
  Xerror.raise_error ~resource:Xid.none ~serial:conn.cstats.total_requests
    Xerror.BadConnection

(* ------------------------------------------------------------------ *)
(* Wire tracing *)

let kind_name = function
  | Resource -> "resource"
  | Window_op -> "window"
  | Draw -> "draw"
  | Property -> "property"
  | Other -> "other"

let set_tracing ?capacity conn flag =
  (match capacity with
  | Some c when c <> Trace.capacity conn.trace ->
    conn.trace <- Trace.create ~capacity:c ()
  | _ -> ());
  conn.tracing <- flag

let tracing conn = conn.tracing
let trace conn = Trace.to_list conn.trace
let trace_length conn = Trace.length conn.trace
let clear_trace conn = Trace.clear conn.trace
let trace_dump conn = Trace.dump ~kind_name conn.trace

let record_trace conn kind resource outcome =
  if conn.tracing then
    Trace.add conn.trace
      {
        Trace.serial = conn.cstats.total_requests;
        kind;
        resource;
        time = conn.server.clock;
        outcome;
      }

(* Account for one protocol request; the logical clock ticks so event
   timestamps stay ordered. The fault plan rejects the request after it
   has been counted, as a real server rejects a request it received. A
   dead connection rejects everything; the crash plan kills the
   connection the moment its request counter reaches [crash_at]. *)
let request ?(round_trip = false) ?(resource = Xid.none) conn kind =
  if conn.dead then begin
    record_trace conn kind resource Trace.Bad_connection;
    dead_conn_error conn
  end;
  let s = conn.cstats in
  s.total_requests <- s.total_requests + 1;
  if round_trip then s.round_trips <- s.round_trips + 1;
  (match kind with
  | Resource -> s.resource_allocs <- s.resource_allocs + 1
  | Window_op -> s.window_requests <- s.window_requests + 1
  | Draw -> s.draw_requests <- s.draw_requests + 1
  | Property -> s.property_requests <- s.property_requests + 1
  | Other -> ());
  conn.server.clock <- conn.server.clock + 1;
  if conn.crash_at > 0 && s.total_requests >= conn.crash_at then begin
    kill_connection conn;
    record_trace conn kind resource Trace.Bad_connection;
    dead_conn_error conn
  end;
  match maybe_inject conn kind resource with
  | () -> record_trace conn kind resource Trace.Ok
  | exception (Xerror.X_error _ as e) ->
    record_trace conn kind resource Trace.Injected_fault;
    raise e

let window_exists conn id =
  request ~round_trip:true ~resource:id conn Other;
  Hashtbl.mem conn.server.windows id

(* ------------------------------------------------------------------ *)
(* Atoms *)

let intern_atom conn name =
  request ~round_trip:true conn Other;
  Atom.intern conn.server.atoms name

let atom_name conn atom =
  request ~round_trip:true conn Other;
  Atom.name conn.server.atoms atom

(* ------------------------------------------------------------------ *)
(* Windows *)

let create_window conn ~parent ~x ~y ~width ~height ~border_width =
  request ~resource:parent conn Window_op;
  let t = conn.server in
  let parent_win = window_exn conn parent in
  let id = Xid.fresh t.xids in
  let w =
    Window.create ~id ~owner_cid:conn.cid ~parent:(Some parent_win) ~x ~y
      ~width ~height ~border_width
  in
  Hashtbl.replace t.windows id w;
  id

let destroy_window conn id =
  request ~resource:id conn Window_op;
  let t = conn.server in
  match lookup_window t id with
  | None -> ()
  | Some w ->
    if w.Window.id = t.root_win.Window.id then
      (* X refuses to destroy the root window. *)
      Xerror.raise_error ~resource:id ~serial:conn.cstats.total_requests
        Xerror.BadWindow;
    let doomed = Window.descendants w in
    (* Notify deepest-first, as X does. *)
    List.iter
      (fun d ->
        d.Window.destroyed <- true;
        d.Window.mapped <- false;
        deliver t d Event.Destroy_notify;
        Hashtbl.remove t.windows d.Window.id;
        (* Drop selection ownership held by destroyed windows. *)
        Hashtbl.iter
          (fun sel owner ->
            if owner = d.Window.id then Hashtbl.remove t.selections sel)
          (Hashtbl.copy t.selections);
        if t.focus = d.Window.id then t.focus <- Xid.none)
      (List.rev doomed);
    Window.unlink w;
    update_pointer_window t

let map_window conn id =
  request ~resource:id conn Window_op;
  let t = conn.server in
  let w = window_exn conn id in
  if not w.Window.mapped then begin
    w.Window.mapped <- true;
    deliver t w Event.Map_notify;
    if Window.viewable w then deliver t w (expose_event w);
    update_pointer_window t
  end

let unmap_window conn id =
  request ~resource:id conn Window_op;
  let t = conn.server in
  let w = window_exn conn id in
  if w.Window.mapped then begin
    w.Window.mapped <- false;
    deliver t w Event.Unmap_notify;
    update_pointer_window t
  end

let configure_window conn ?x ?y ?width ?height ?border_width id =
  request ~resource:id conn Window_op;
  let t = conn.server in
  let w = window_exn conn id in
  let resized =
    (match width with Some v -> v <> w.Window.width | None -> false)
    || match height with Some v -> v <> w.Window.height | None -> false
  in
  Option.iter (fun v -> w.Window.x <- v) x;
  Option.iter (fun v -> w.Window.y <- v) y;
  Option.iter (fun v -> w.Window.width <- max 1 v) width;
  Option.iter (fun v -> w.Window.height <- max 1 v) height;
  Option.iter (fun v -> w.Window.border_width <- v) border_width;
  deliver t w
    (Event.Configure_notify
       {
         cx = w.Window.x;
         cy = w.Window.y;
         cwidth = w.Window.width;
         cheight = w.Window.height;
       });
  if resized && Window.viewable w then deliver t w (expose_event w);
  update_pointer_window t

let raise_window conn id =
  request ~resource:id conn Window_op;
  let t = conn.server in
  Window.raise_to_top (window_exn conn id);
  update_pointer_window t

let lower_window conn id =
  request ~resource:id conn Window_op;
  let t = conn.server in
  Window.lower_to_bottom (window_exn conn id);
  update_pointer_window t

let set_window_background conn id color =
  request ~resource:id conn Window_op;
  (window_exn conn id).Window.background <- Some color

let set_window_border conn id color =
  request ~resource:id conn Window_op;
  (window_exn conn id).Window.border_color <- color

let set_window_cursor conn id cursor =
  request ~resource:id conn Window_op;
  (window_exn conn id).Window.cursor <- cursor

let set_override_redirect conn id flag =
  request ~resource:id conn Window_op;
  (window_exn conn id).Window.override_redirect <- flag

let query_geometry conn id =
  request ~round_trip:true conn Other;
  Option.map
    (fun w ->
      Geom.rect ~x:w.Window.x ~y:w.Window.y ~width:w.Window.width
        ~height:w.Window.height)
    (lookup_window conn.server id)

let query_pointer conn =
  request ~round_trip:true conn Other;
  conn.server.pointer

(* ------------------------------------------------------------------ *)
(* Resources *)

let alloc_color conn spec =
  request ~round_trip:true conn Resource;
  Color.parse spec

let open_font conn name =
  request ~round_trip:true conn Resource;
  Font.parse name

let alloc_cursor conn name =
  request ~round_trip:true conn Resource;
  Cursor.parse name

let alloc_bitmap conn spec =
  request ~round_trip:true conn Resource;
  Bitmap.parse spec

let create_gc conn ?foreground ?background ?font ?line_width ?stipple () =
  request conn Resource;
  Gcontext.make ~id:(Xid.fresh conn.server.xids) ?foreground ?background
    ?font ?line_width ?stipple ()

(* ------------------------------------------------------------------ *)
(* Properties *)

let notify_property t w ~prop_atom ~deleted =
  let ev = Event.Property_notify { prop_atom; prop_deleted = deleted } in
  deliver t w ev;
  List.iter
    (fun cid ->
      if cid <> w.Window.owner_cid then
        deliver_to_cid t ~cid ~window:w.Window.id ev)
    w.Window.property_listeners

let change_property conn id ~prop ~ptype data =
  request ~resource:id conn Property;
  let t = conn.server in
  let w = window_exn conn id in
  Hashtbl.replace w.Window.properties prop
    { Window.prop_type = ptype; prop_data = data };
  notify_property t w ~prop_atom:prop ~deleted:false

let append_property conn id ~prop ~ptype data =
  request ~resource:id conn Property;
  let t = conn.server in
  let w = window_exn conn id in
  let merged =
    match Hashtbl.find_opt w.Window.properties prop with
    | Some existing -> existing.Window.prop_data ^ data
    | None -> data
  in
  Hashtbl.replace w.Window.properties prop
    { Window.prop_type = ptype; prop_data = merged };
  notify_property t w ~prop_atom:prop ~deleted:false

let get_property conn id ~prop =
  request ~round_trip:true conn Property;
  match lookup_window conn.server id with
  | None -> None
  | Some w -> Hashtbl.find_opt w.Window.properties prop

let delete_property conn id ~prop =
  request ~resource:id conn Property;
  let t = conn.server in
  match lookup_window t id with
  | None -> ()
  | Some w ->
    if Hashtbl.mem w.Window.properties prop then begin
      Hashtbl.remove w.Window.properties prop;
      notify_property t w ~prop_atom:prop ~deleted:true
    end

let listen_property conn id =
  request ~resource:id conn Property;
  let w = window_exn conn id in
  if not (List.mem conn.cid w.Window.property_listeners) then
    w.Window.property_listeners <-
      conn.cid :: w.Window.property_listeners

(* ------------------------------------------------------------------ *)
(* Selections *)

let set_selection_owner conn ~selection window =
  request conn Other;
  let t = conn.server in
  let previous =
    Option.value (Hashtbl.find_opt t.selections selection) ~default:Xid.none
  in
  if previous <> Xid.none && previous <> window then (
    match lookup_window t previous with
    | Some w -> deliver t w (Event.Selection_clear { selection })
    | None -> ());
  if window = Xid.none then Hashtbl.remove t.selections selection
  else Hashtbl.replace t.selections selection window

let get_selection_owner conn ~selection =
  request ~round_trip:true conn Other;
  Option.value
    (Hashtbl.find_opt conn.server.selections selection)
    ~default:Xid.none

let convert_selection conn ~selection ~target ~property ~requestor =
  request conn Other;
  let t = conn.server in
  let owner =
    Option.value (Hashtbl.find_opt t.selections selection) ~default:Xid.none
  in
  match lookup_window t owner with
  | Some owner_win ->
    t.pending_converts <-
      {
        pc_selection = selection;
        pc_target = target;
        pc_requestor = requestor;
        pc_owner_cid = owner_win.Window.owner_cid;
      }
      :: t.pending_converts;
    deliver t owner_win
      (Event.Selection_request
         {
           sr_selection = selection;
           sr_target = target;
           sr_property = property;
           sr_requestor = requestor;
         })
  | None -> (
    (* No owner: refuse immediately. *)
    match lookup_window t requestor with
    | Some req_win ->
      deliver t req_win
        (Event.Selection_notify
           {
             sn_selection = selection;
             sn_target = target;
             sn_property = None;
             sn_requestor = requestor;
           })
    | None -> ())

let send_selection_notify conn ~requestor ~selection ~target ~property ~data =
  request conn Other;
  let t = conn.server in
  t.pending_converts <-
    List.filter
      (fun pc ->
        not (pc.pc_requestor = requestor && pc.pc_selection = selection))
      t.pending_converts;
  match lookup_window t requestor with
  | None -> ()
  | Some req_win ->
    (match (property, data) with
    | Some prop, Some data ->
      Hashtbl.replace req_win.Window.properties prop
        { Window.prop_type = Atom.string; prop_data = data }
    | _ -> ());
    deliver t req_win
      (Event.Selection_notify
         {
           sn_selection = selection;
           sn_target = target;
           sn_property = property;
           sn_requestor = requestor;
         })

(* ------------------------------------------------------------------ *)
(* Drawing *)

let clear_window conn id =
  request ~resource:id conn Draw;
  Window.clear_drawing (window_exn conn id)

let clear_keyed conn id key =
  request ~resource:id conn Draw;
  Window.clear_key (window_exn conn id) key

let fill_rect ?key conn id gc rect =
  request ~resource:id conn Draw;
  Window.add_draw_op ?key (window_exn conn id)
    (Window.Fill_rect (rect, gc.Gcontext.foreground))

let draw_rect ?key conn id gc rect =
  request ~resource:id conn Draw;
  Window.add_draw_op ?key (window_exn conn id)
    (Window.Draw_rect (rect, gc.Gcontext.foreground))

let draw_text ?key conn id gc ~x ~y text =
  request ~resource:id conn Draw;
  let font =
    match gc.Gcontext.font with
    | Some f -> f
    | None -> Font.fallback ()
  in
  Window.add_draw_op ?key (window_exn conn id)
    (Window.Draw_text { tx = x; ty = y; text; color = gc.Gcontext.foreground; font })

let draw_line ?key conn id gc ~x1 ~y1 ~x2 ~y2 =
  request ~resource:id conn Draw;
  Window.add_draw_op ?key (window_exn conn id)
    (Window.Draw_line { x1; y1; x2; y2; color = gc.Gcontext.foreground })

let stipple_rect ?key conn id gc rect =
  request ~resource:id conn Draw;
  match gc.Gcontext.stipple with
  | Some bitmap ->
    Window.add_draw_op ?key (window_exn conn id)
      (Window.Stipple_rect (rect, bitmap, gc.Gcontext.foreground))
  | None ->
    Window.add_draw_op ?key (window_exn conn id)
      (Window.Fill_rect (rect, gc.Gcontext.foreground))

let draw_relief ?key conn id rect ~raised ~width =
  request ~resource:id conn Draw;
  Window.add_draw_op ?key (window_exn conn id)
    (Window.Draw_relief { rrect = rect; raised; rwidth = width })

(* ------------------------------------------------------------------ *)
(* Focus *)

let set_input_focus conn id =
  request conn Other;
  let t = conn.server in
  if t.focus <> id then begin
    (match lookup_window t t.focus with
    | Some old -> deliver t old Event.Focus_out
    | None -> ());
    t.focus <- id;
    match lookup_window t id with
    | Some w -> deliver t w Event.Focus_in
    | None -> ()
  end

let get_input_focus conn =
  request ~round_trip:true conn Other;
  conn.server.focus

(* ------------------------------------------------------------------ *)
(* Event queues *)

let next_event conn =
  if Queue.is_empty conn.queue then None else Some (Queue.pop conn.queue)

let pending conn = Queue.length conn.queue

let send_event conn id event =
  request conn Other;
  let t = conn.server in
  match lookup_window t id with
  | Some w -> deliver t w event
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Input injection *)

let pointer_window t = t.pointer_win

let window_relative t id =
  match lookup_window t id with
  | Some w ->
    let origin = Window.root_position w in
    { Geom.x = t.pointer.Geom.x - origin.Geom.x;
      y = t.pointer.Geom.y - origin.Geom.y }
  | None -> t.pointer

let inject_motion t ~x ~y =
  t.clock <- t.clock + 1;
  t.pointer <- { Geom.x = x; y };
  update_pointer_window t;
  let rel = window_relative t t.pointer_win in
  match lookup_window t t.pointer_win with
  | Some w ->
    deliver t w
      (Event.Motion { mx = rel.Geom.x; my = rel.Geom.y; motion_state = t.mod_state })
  | None -> ()

let with_button state button pressed =
  match button with
  | 1 -> { state with Event.button1 = pressed }
  | 2 -> { state with Event.button2 = pressed }
  | 3 -> { state with Event.button3 = pressed }
  | _ -> state

let inject_button t ~button ~pressed =
  t.clock <- t.clock + 1;
  let rel = window_relative t t.pointer_win in
  let ev =
    if pressed then
      Event.Button_press
        { button; bx = rel.Geom.x; by = rel.Geom.y; button_state = t.mod_state }
    else
      Event.Button_release
        { button; bx = rel.Geom.x; by = rel.Geom.y; button_state = t.mod_state }
  in
  (* X reports the state *before* the transition, so update afterwards. *)
  t.mod_state <- with_button t.mod_state button pressed;
  t.buttons_down <-
    (if pressed then button :: t.buttons_down
     else List.filter (fun b -> b <> button) t.buttons_down);
  match lookup_window t t.pointer_win with
  | Some w -> deliver t w ev
  | None -> ()

let modifier_of_keysym = function
  | "Shift_L" | "Shift_R" -> Some `Shift
  | "Control_L" | "Control_R" -> Some `Control
  | "Meta_L" | "Meta_R" -> Some `Meta
  | "Alt_L" | "Alt_R" -> Some `Alt
  | "Caps_Lock" -> Some `Lock
  | _ -> None

let apply_modifier state m pressed =
  match m with
  | `Shift -> { state with Event.shift = pressed }
  | `Control -> { state with Event.control = pressed }
  | `Meta -> { state with Event.meta = pressed }
  | `Alt -> { state with Event.alt = pressed }
  | `Lock -> { state with Event.lock = pressed }

let focus_target t =
  if t.focus <> Xid.none && Hashtbl.mem t.windows t.focus then t.focus
  else t.pointer_win

let inject_key t ~keysym ~pressed =
  t.clock <- t.clock + 1;
  match modifier_of_keysym keysym with
  | Some m -> t.mod_state <- apply_modifier t.mod_state m pressed
  | None -> (
    let target = focus_target t in
    let rel = window_relative t target in
    let key =
      {
        Event.keysym;
        key_state = t.mod_state;
        kx = rel.Geom.x;
        ky = rel.Geom.y;
      }
    in
    let ev = if pressed then Event.Key_press key else Event.Key_release key in
    match lookup_window t target with
    | Some w -> deliver t w ev
    | None -> ())

let inject_string t s =
  String.iter
    (fun c ->
      let upper = c >= 'A' && c <= 'Z' in
      let keysym = Event.keysym_of_char c in
      if upper then inject_key t ~keysym:"Shift_L" ~pressed:true;
      inject_key t ~keysym ~pressed:true;
      inject_key t ~keysym ~pressed:false;
      if upper then inject_key t ~keysym:"Shift_L" ~pressed:false)
    s
