(** Server-side windows: a tree of rectangles with position, size, border,
    background, map state, properties and a retained display list (what the
    rasterizer draws). *)

(** One retained drawing operation, already resolved against its GC. *)
type draw_op =
  | Fill_rect of Geom.rect * Color.t
  | Draw_text of { tx : int; ty : int; text : string; color : Color.t; font : Font.t }
  | Draw_line of { x1 : int; y1 : int; x2 : int; y2 : int; color : Color.t }
  | Draw_rect of Geom.rect * Color.t (* outline only *)
  | Stipple_rect of Geom.rect * Bitmap.t * Color.t
  | Draw_relief of { rrect : Geom.rect; raised : bool; rwidth : int }
      (** 3-D shadow: light on two sides, dark on the others. *)

type prop = { prop_type : Atom.t; prop_data : string }

type t = {
  id : Xid.t;
  owner_cid : int;  (** connection that created the window *)
  mutable parent : t option;
  mutable children : t list;  (** bottom-to-top stacking order *)
  mutable x : int;
  mutable y : int;  (** relative to parent *)
  mutable width : int;
  mutable height : int;
  mutable border_width : int;
  mutable background : Color.t option;
  mutable border_color : Color.t;
  mutable mapped : bool;
  mutable destroyed : bool;
  mutable cursor : Cursor.t option;
  mutable override_redirect : bool;
  properties : (Atom.t, prop) Hashtbl.t;
  mutable property_listeners : int list;
      (** connection ids interested in PropertyNotify beyond the owner *)
  ops : (int, draw_op list) Hashtbl.t;
      (** retained display list, keyed: the rasterizer paints keys in
          ascending order, ops within a key in insertion order. Keyed
          clients (the canvas) address op groups directly so one item's
          drawing can be replaced in O(1); unkeyed draws are assigned
          fresh ascending keys, preserving plain append semantics. *)
  mutable next_op_key : int;  (** next auto key for unkeyed draws *)
}

val create :
  id:Xid.t ->
  owner_cid:int ->
  parent:t option ->
  x:int ->
  y:int ->
  width:int ->
  height:int ->
  border_width:int ->
  t
(** Create a window and link it under [parent] (on top of the stacking
    order). *)

val root_position : t -> Geom.point
(** Absolute position of the window's top-left corner (inside its border)
    in root coordinates. *)

val bounds : t -> Geom.rect
(** The window rectangle (excluding border) in root coordinates. *)

val viewable : t -> bool
(** Mapped, and all ancestors mapped. *)

val descendants : t -> t list
(** The window and all windows below it, depth-first. *)

val window_at : t -> Geom.point -> t option
(** Topmost viewable window containing the (root-coordinate) point,
    searching from [t] downward. *)

val unlink : t -> unit
(** Detach from the parent's child list (used by destroy). *)

val raise_to_top : t -> unit

val lower_to_bottom : t -> unit

val add_draw_op : ?key:int -> t -> draw_op -> unit
(** Append an op under [key] (default: a fresh auto key above all previous
    auto keys). *)

val clear_key : t -> int -> unit
(** Drop every op stored under one key. *)

val clear_drawing : t -> unit
(** Drop all ops and reset the auto-key counter. *)

val ops_in_order : t -> draw_op list
(** All retained ops in paint order: ascending key, insertion order within
    a key. *)

val op_count : t -> int
