type t = {
  name : string;
  width : int;
  height : int;
  bits : bool array array;
}

(* Built-in stipples: every-other-pixel patterns of varying density. *)
let make_pattern name width height f =
  {
    name;
    width;
    height;
    bits = Array.init height (fun y -> Array.init width (fun x -> f x y));
  }

let builtins =
  [
    ("gray50", fun () -> make_pattern "gray50" 4 4 (fun x y -> (x + y) mod 2 = 0));
    ("gray25", fun () -> make_pattern "gray25" 4 4 (fun x y -> (x + (2 * y)) mod 4 = 0));
    ("gray12", fun () -> make_pattern "gray12" 4 4 (fun x y -> x mod 4 = 0 && y mod 2 = 0));
    ("black", fun () -> make_pattern "black" 4 4 (fun _ _ -> true));
    ("white", fun () -> make_pattern "white" 4 4 (fun _ _ -> false));
    ("questhead", fun () -> make_pattern "questhead" 8 8 (fun x y -> (x * y) mod 3 = 0));
    ("warning", fun () -> make_pattern "warning" 8 8 (fun x y -> x = y || x + y = 7));
    ("hourglass", fun () -> make_pattern "hourglass" 8 8 (fun x y -> x >= min y (7 - y) && x <= max y (7 - y)));
  ]

let builtin_names () = List.map fst builtins

(* Built-in pattern used when a bitmap request fails: a 50% stipple keeps
   stippled drawing visibly dithered instead of crashing. *)
let fallback () = make_pattern "gray50" 4 4 (fun x y -> (x + y) mod 2 = 0)

(* Minimal XBM reader: find "_width N", "_height N" and the 0xNN bytes. *)
let parse_xbm ~name contents =
  let find_define key =
    let rec scan i =
      match String.index_from_opt contents i '#' with
      | None -> None
      | Some j ->
        let line_end =
          match String.index_from_opt contents j '\n' with
          | Some e -> e
          | None -> String.length contents
        in
        let line = String.sub contents j (line_end - j) in
        let has_key =
          let kl = String.length key and ll = String.length line in
          let rec go p = p + kl <= ll && (String.sub line p kl = key || go (p + 1)) in
          go 0
        in
        if has_key then
          (* Last whitespace-separated token is the number. *)
          let tokens =
            List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
          in
          (match List.rev tokens with
          | last :: _ -> int_of_string_opt (String.trim last)
          | [] -> None)
        else scan (line_end + 1)
    in
    scan 0
  in
  let read_bytes () =
    let bytes = ref [] in
    let n = String.length contents in
    let i = ref 0 in
    while !i < n - 1 do
      if contents.[!i] = '0' && (contents.[!i + 1] = 'x' || contents.[!i + 1] = 'X')
      then begin
        let j = ref (!i + 2) in
        while
          !j < n
          &&
          match contents.[!j] with
          | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
          | _ -> false
        do
          incr j
        done;
        (match int_of_string_opt (String.sub contents !i (!j - !i)) with
        | Some b -> bytes := b :: !bytes
        | None -> ());
        i := !j
      end
      else incr i
    done;
    List.rev !bytes
  in
  match (find_define "_width", find_define "_height") with
  | Some width, Some height when width > 0 && height > 0 ->
    let bytes = Array.of_list (read_bytes ()) in
    let bytes_per_row = (width + 7) / 8 in
    if Array.length bytes < bytes_per_row * height then None
    else
      let bits =
        Array.init height (fun y ->
            Array.init width (fun x ->
                let b = bytes.((y * bytes_per_row) + (x / 8)) in
                b land (1 lsl (x mod 8)) <> 0))
      in
      Some { name; width; height; bits }
  | _ -> None

let parse spec =
  if spec = "" then None
  else if spec.[0] = '@' then begin
    let path = String.sub spec 1 (String.length spec - 1) in
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> parse_xbm ~name:spec contents
    | exception Sys_error _ -> None
  end
  else
    Option.map (fun f -> f ()) (List.assoc_opt spec builtins)
