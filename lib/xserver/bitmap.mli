(** Bitmaps: small two-color images used for stipples and icons. Tk names
    them textually — a built-in name like [gray50], or [@file] for an XBM
    file on disk (the paper's [@star] example). *)

type t = {
  name : string;
  width : int;
  height : int;
  bits : bool array array; (** [bits.(y).(x)] — row-major *)
}

val parse : string -> t option
(** Resolve a bitmap specification. [@path] loads a (simplified) XBM file:
    the [#define _width/_height] lines and the 0x.. byte list. *)

val builtin_names : unit -> string list

val fallback : unit -> t
(** The built-in [gray50] pattern, constructed without any lookup; what a
    degraded bitmap request falls back to. *)

val parse_xbm : name:string -> string -> t option
(** Parse XBM file contents (exposed for tests). *)
