(** Bounded protocol-trace ring buffer.

    The paper's evaluation (§7) is phrased in server traffic avoided; a
    trace of individual requests is what makes that traffic inspectable.
    Each {!Server.connection} owns one ring of {!record}s — request
    serial, class, resource id, virtual-clock timestamp and outcome —
    capped at a fixed capacity so tracing can stay enabled indefinitely.

    The ring is generic in the request-class type to keep this module
    below {!Server} in the dependency order. *)

(** What became of a traced request. Genuine protocol errors other than a
    dead connection (e.g. BadWindow on a stale id) surface through
    {!Xerror.X_error} after the request was already recorded [Ok]. *)
type outcome =
  | Ok
  | Injected_fault  (** rejected by the fault-injection plan *)
  | Absorbed  (** injected, then absorbed by a layer above *)
  | Bad_connection  (** issued on a dead connection *)

type 'k record = {
  serial : int;  (** the connection's request sequence number *)
  kind : 'k;  (** request class *)
  resource : Xid.t;  (** primary resource id ({!Xid.none} if none) *)
  time : int;  (** server logical clock at issue *)
  mutable outcome : outcome;
}

type 'k t

val default_capacity : int
(** 512 records. *)

val create : ?capacity:int -> unit -> 'k t

val capacity : 'k t -> int

val length : 'k t -> int
(** Live records (≤ capacity). *)

val clear : 'k t -> unit

val add : 'k t -> 'k record -> unit
(** Appends, overwriting the oldest record once full. *)

val to_list : 'k t -> 'k record list
(** Oldest first. *)

val last : 'k t -> 'k record option

val mark_absorbed : 'k t -> serial:int -> bool
(** Flip the newest [Injected_fault] record with this serial to
    [Absorbed]; [false] if no such record survives in the ring. *)

val outcome_name : outcome -> string
(** ["ok"], ["injected-fault"], ["absorbed"], ["BadConnection"]. *)

val dump : kind_name:('k -> string) -> 'k t -> string
(** Human-readable table, one line per record, oldest first. *)
