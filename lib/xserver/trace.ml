type outcome = Ok | Injected_fault | Absorbed | Bad_connection

type 'k record = {
  serial : int;
  kind : 'k;
  resource : Xid.t;
  time : int;
  mutable outcome : outcome;
}

(* Fixed-size ring: [head] is the next write slot, [len] how many slots
   are live. Writing over a full ring overwrites the oldest record, so
   the buffer bounds memory no matter how long tracing stays on. *)
type 'k t = {
  mutable slots : 'k record option array;
  mutable head : int;
  mutable len : int;
}

let default_capacity = 512

let create ?(capacity = default_capacity) () =
  { slots = Array.make (max 1 capacity) None; head = 0; len = 0 }

let capacity t = Array.length t.slots

let length t = t.len

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.head <- 0;
  t.len <- 0

let add t record =
  let cap = Array.length t.slots in
  t.slots.(t.head) <- Some record;
  t.head <- (t.head + 1) mod cap;
  if t.len < cap then t.len <- t.len + 1

(* Oldest first. *)
let to_list t =
  let cap = Array.length t.slots in
  let start = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i ->
      match t.slots.((start + i) mod cap) with
      | Some r -> r
      | None -> assert false)

let last t =
  if t.len = 0 then None
  else t.slots.((t.head - 1 + Array.length t.slots) mod Array.length t.slots)

(* Newest-first scan: flip the first injected-fault record carrying
   [serial] to absorbed. Called when a layer above catches the error, so
   the record is almost always the newest one. *)
let mark_absorbed t ~serial =
  let cap = Array.length t.slots in
  let rec go i =
    if i >= t.len then false
    else
      match t.slots.((t.head - 1 - i + (2 * cap)) mod cap) with
      | Some r when r.serial = serial && r.outcome = Injected_fault ->
        r.outcome <- Absorbed;
        true
      | _ -> go (i + 1)
  in
  go 0

let outcome_name = function
  | Ok -> "ok"
  | Injected_fault -> "injected-fault"
  | Absorbed -> "absorbed"
  | Bad_connection -> "BadConnection"

let dump ~kind_name t =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%6d %4dms %-8s 0x%-6x %s\n" r.serial r.time
           (kind_name r.kind) r.resource (outcome_name r.outcome)))
    (to_list t);
  Buffer.contents buf
