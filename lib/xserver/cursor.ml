type t = { name : string; glyph : int }

(* Names from X11's cursorfont.h, in glyph order. *)
let cursor_font =
  [
    "X_cursor"; "arrow"; "based_arrow_down"; "based_arrow_up"; "boat";
    "bogosity"; "bottom_left_corner"; "bottom_right_corner"; "bottom_side";
    "bottom_tee"; "box_spiral"; "center_ptr"; "circle"; "clock";
    "coffee_mug"; "cross"; "cross_reverse"; "crosshair"; "diamond_cross";
    "dot"; "dotbox"; "double_arrow"; "draft_large"; "draft_small";
    "draped_box"; "exchange"; "fleur"; "gobbler"; "gumby"; "hand1";
    "hand2"; "heart"; "icon"; "iron_cross"; "left_ptr"; "left_side";
    "left_tee"; "leftbutton"; "ll_angle"; "lr_angle"; "man"; "middlebutton";
    "mouse"; "pencil"; "pirate"; "plus"; "question_arrow"; "right_ptr";
    "right_side"; "right_tee"; "rightbutton"; "rtl_logo"; "sailboat";
    "sb_down_arrow"; "sb_h_double_arrow"; "sb_left_arrow"; "sb_right_arrow";
    "sb_up_arrow"; "sb_v_double_arrow"; "shuttle"; "sizing"; "spider";
    "spraycan"; "star"; "target"; "tcross"; "top_left_arrow";
    "top_left_corner"; "top_right_corner"; "top_side"; "top_tee"; "trek";
    "ul_angle"; "umbrella"; "ur_angle"; "watch"; "xterm";
  ]

let table : (string, int) Hashtbl.t = Hashtbl.create 97

let () = List.iteri (fun i name -> Hashtbl.replace table name (i * 2)) cursor_font

let parse name =
  Option.map (fun glyph -> { name; glyph }) (Hashtbl.find_opt table name)

(* The cursor every degraded lookup falls back to: the default X pointer. *)
let fallback = { name = "left_ptr"; glyph = 68 }

let names () = cursor_font
