type t = {
  name : string;
  family : string;
  char_width : int;
  ascent : int;
  descent : int;
  bold : bool;
}

let default_name = "fixed"

let aliases =
  [
    ("fixed", (6, 10, 3));
    ("6x13", (6, 10, 3));
    ("8x13", (8, 10, 3));
    ("9x15", (9, 12, 3));
    ("5x8", (5, 6, 2));
    ("cursor", (8, 10, 3));
  ]

let known_families =
  [ "helvetica"; "times"; "courier"; "fixed"; "lucida"; "charter"; "symbol" ]

(* Metrics derived from the point size (in tenths, XLFD-style): a rough
   2:1 height-to-width monospace design. *)
let metrics_for_size tenths =
  let px = max 4 (tenths / 10) in
  let char_width = max 3 ((px * 3) / 5) in
  let ascent = max 3 ((px * 4) / 5) in
  let descent = max 1 (px / 5) in
  (char_width, ascent, descent)

(* Parse a simplified XLFD: fields separated by '-', with '*' wildcards.
   We look for a known family, an optional "bold" weight and a numeric
   field interpreted as the point size in tenths. *)
let parse_xlfd name =
  let fields = String.split_on_char '-' (String.lowercase_ascii name) in
  let family =
    List.find_opt (fun f -> List.mem f known_families) fields
  in
  let bold = List.mem "bold" fields in
  let size =
    List.find_map
      (fun f ->
        match int_of_string_opt f with
        | Some n when n >= 60 && n <= 500 -> Some n
        | Some n when n >= 6 && n <= 50 -> Some (n * 10)
        | _ -> None)
      fields
  in
  match family with
  | None -> None
  | Some family ->
    let tenths = Option.value size ~default:120 in
    let char_width, ascent, descent = metrics_for_size tenths in
    Some { name; family; char_width; ascent; descent; bold }

let parse name =
  let lower = String.lowercase_ascii name in
  match List.assoc_opt lower aliases with
  | Some (char_width, ascent, descent) ->
    Some { name; family = "fixed"; char_width; ascent; descent; bold = false }
  | None ->
    if String.contains name '-' then parse_xlfd name
    else if List.mem lower known_families then
      let char_width, ascent, descent = metrics_for_size 120 in
      Some { name; family = lower; char_width; ascent; descent; bold = false }
    else None

(* A font that is guaranteed to exist: the "fixed" metrics, built without
   consulting the alias table so that a corrupt or unknown default name can
   never abort the process. Degraded rendering beats no rendering. *)
let fallback ?(name = default_name) () =
  { name; family = "fixed"; char_width = 6; ascent = 10; descent = 3;
    bold = false }

let line_height f = f.ascent + f.descent

let text_width f s = String.length s * f.char_width
