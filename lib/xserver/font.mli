(** Synthetic server fonts. Real X fonts come from the server with
    per-character metrics; here every font is a fixed-pitch design whose
    cell size is derived from the requested family and point size, which is
    all the toolkit's geometry computations need.

    Accepted names: short aliases ([fixed], [6x13], [8x13], [9x15]) and
    simplified XLFD patterns like
    [*-helvetica-bold-r-*-120-*] (the 120 is the point size in tenths). *)

type t = {
  name : string; (** the name it was opened under *)
  family : string;
  char_width : int; (** advance per character, pixels *)
  ascent : int;
  descent : int;
  bold : bool;
}

val parse : string -> t option
(** Resolve a font name; [None] if the name matches no known pattern. *)

val fallback : ?name:string -> unit -> t
(** A font that always exists: the metrics of "fixed", built without any
    table lookup. Used when a font request fails (or is fault-injected)
    so text still renders, degraded, instead of crashing. *)

val line_height : t -> int
(** [ascent + descent]. *)

val text_width : t -> string -> int
(** Width in pixels of a string drawn in this font. *)

val default_name : string
(** The fallback font ("fixed"). *)
