type draw_op =
  | Fill_rect of Geom.rect * Color.t
  | Draw_text of { tx : int; ty : int; text : string; color : Color.t; font : Font.t }
  | Draw_line of { x1 : int; y1 : int; x2 : int; y2 : int; color : Color.t }
  | Draw_rect of Geom.rect * Color.t
  | Stipple_rect of Geom.rect * Bitmap.t * Color.t
  | Draw_relief of { rrect : Geom.rect; raised : bool; rwidth : int }

type prop = { prop_type : Atom.t; prop_data : string }

type t = {
  id : Xid.t;
  owner_cid : int;
  mutable parent : t option;
  mutable children : t list;
  mutable x : int;
  mutable y : int;
  mutable width : int;
  mutable height : int;
  mutable border_width : int;
  mutable background : Color.t option;
  mutable border_color : Color.t;
  mutable mapped : bool;
  mutable destroyed : bool;
  mutable cursor : Cursor.t option;
  mutable override_redirect : bool;
  properties : (Atom.t, prop) Hashtbl.t;
  mutable property_listeners : int list;
  ops : (int, draw_op list) Hashtbl.t;
  mutable next_op_key : int;
}

let create ~id ~owner_cid ~parent ~x ~y ~width ~height ~border_width =
  let w =
    {
      id;
      owner_cid;
      parent;
      children = [];
      x;
      y;
      width = max 1 width;
      height = max 1 height;
      border_width;
      background = None;
      border_color = Color.black;
      mapped = false;
      destroyed = false;
      cursor = None;
      override_redirect = false;
      properties = Hashtbl.create 8;
      property_listeners = [];
      ops = Hashtbl.create 8;
      next_op_key = 0;
    }
  in
  (match parent with
  | Some p -> p.children <- p.children @ [ w ]
  | None -> ());
  w

let rec root_position w =
  match w.parent with
  | None -> { Geom.x = w.x; y = w.y }
  | Some p ->
    let pp = root_position p in
    { Geom.x = pp.x + w.x + w.border_width; y = pp.y + w.y + w.border_width }

let bounds w =
  let p = root_position w in
  Geom.rect_of p { Geom.width = w.width; height = w.height }

let rec viewable w =
  w.mapped && (not w.destroyed)
  && match w.parent with None -> true | Some p -> viewable p

let rec descendants w = w :: List.concat_map descendants w.children

let rec window_at w point =
  if not (w.mapped && not w.destroyed) then None
  else if not (Geom.contains (bounds w) point) then None
  else
    (* Children are bottom-to-top: scan from the top. *)
    let rec try_children = function
      | [] -> Some w
      | child :: rest -> (
        match window_at child point with
        | Some hit -> Some hit
        | None -> try_children rest)
    in
    try_children (List.rev w.children)

let unlink w =
  match w.parent with
  | None -> ()
  | Some p ->
    p.children <- List.filter (fun c -> c != w) p.children;
    w.parent <- None

let raise_to_top w =
  match w.parent with
  | None -> ()
  | Some p -> p.children <- List.filter (fun c -> c != w) p.children @ [ w ]

let lower_to_bottom w =
  match w.parent with
  | None -> ()
  | Some p -> p.children <- w :: List.filter (fun c -> c != w) p.children

let add_draw_op ?key w op =
  let key =
    match key with
    | Some k -> k
    | None ->
      (* Unkeyed draws get one fresh key each, so plain append-order
         widgets render exactly as they drew. *)
      let k = w.next_op_key in
      w.next_op_key <- k + 1;
      k
  in
  let prev = try Hashtbl.find w.ops key with Not_found -> [] in
  Hashtbl.replace w.ops key (op :: prev)

let clear_key w key = Hashtbl.remove w.ops key

let clear_drawing w =
  Hashtbl.reset w.ops;
  w.next_op_key <- 0

let ops_in_order w =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) w.ops [] in
  let keys = List.sort compare keys in
  List.concat_map (fun k -> List.rev (Hashtbl.find w.ops k)) keys

let op_count w = Hashtbl.fold (fun _ l acc -> acc + List.length l) w.ops 0
