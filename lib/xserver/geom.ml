type point = { x : int; y : int }

type size = { width : int; height : int }

type rect = { rx : int; ry : int; rwidth : int; rheight : int }

let rect ~x ~y ~width ~height = { rx = x; ry = y; rwidth = width; rheight = height }

let rect_of p s = { rx = p.x; ry = p.y; rwidth = s.width; rheight = s.height }

let contains r p =
  p.x >= r.rx && p.x < r.rx + r.rwidth && p.y >= r.ry && p.y < r.ry + r.rheight

let is_empty r = r.rwidth <= 0 || r.rheight <= 0

let intersect a b =
  let x0 = max a.rx b.rx and y0 = max a.ry b.ry in
  let x1 = min (a.rx + a.rwidth) (b.rx + b.rwidth) in
  let y1 = min (a.ry + a.rheight) (b.ry + b.rheight) in
  if x1 <= x0 || y1 <= y0 then None
  else Some { rx = x0; ry = y0; rwidth = x1 - x0; rheight = y1 - y0 }

let translate r ~dx ~dy = { r with rx = r.rx + dx; ry = r.ry + dy }

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else begin
    let x0 = min a.rx b.rx and y0 = min a.ry b.ry in
    let x1 = max (a.rx + a.rwidth) (b.rx + b.rwidth) in
    let y1 = max (a.ry + a.rheight) (b.ry + b.rheight) in
    { rx = x0; ry = y0; rwidth = x1 - x0; rheight = y1 - y0 }
  end

let area r = if is_empty r then 0 else r.rwidth * r.rheight

let inflate r ~dx ~dy =
  { rx = r.rx - dx; ry = r.ry - dy; rwidth = r.rwidth + (2 * dx); rheight = r.rheight + (2 * dy) }

let pp_rect fmt r =
  Format.fprintf fmt "%dx%d+%d+%d" r.rwidth r.rheight r.rx r.ry
