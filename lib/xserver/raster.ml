(* One character cell per "fixed"-font character: 6x13 pixels. Text drawn
   in the default font then lands exactly one glyph per cell. *)
let scale_x = 6
let scale_y = 13

type canvas = {
  grid : char array array; (* grid.(row).(col) *)
  origin : Geom.point; (* root coords of cell (0,0) *)
  cols : int;
  rows : int;
}

let cell_of_px canvas ~x ~y =
  ((y - canvas.origin.Geom.y) / scale_y, (x - canvas.origin.Geom.x) / scale_x)

let put canvas ~row ~col c =
  if row >= 0 && row < canvas.rows && col >= 0 && col < canvas.cols then
    canvas.grid.(row).(col) <- c

(* Choose a fill character from a color's luminance. *)
let shade color =
  let l = Color.luminance color in
  if l > 0.85 then ' '
  else if l > 0.6 then '.'
  else if l > 0.35 then ':'
  else '#'

let fill_rect canvas ~clip rect color =
  match Geom.intersect rect clip with
  | None -> ()
  | Some r ->
    let c = shade color in
    let row0, col0 = cell_of_px canvas ~x:r.Geom.rx ~y:r.Geom.ry in
    let row1, col1 =
      cell_of_px canvas ~x:(r.Geom.rx + r.Geom.rwidth - 1)
        ~y:(r.Geom.ry + r.Geom.rheight - 1)
    in
    for row = row0 to row1 do
      for col = col0 to col1 do
        put canvas ~row ~col c
      done
    done

let outline_rect canvas ~clip rect ~corner ~horiz ~vert =
  match Geom.intersect rect clip with
  | None -> ()
  | Some _ ->
    let row0, col0 = cell_of_px canvas ~x:rect.Geom.rx ~y:rect.Geom.ry in
    let row1, col1 =
      cell_of_px canvas
        ~x:(rect.Geom.rx + rect.Geom.rwidth - 1)
        ~y:(rect.Geom.ry + rect.Geom.rheight - 1)
    in
    if row1 > row0 && col1 > col0 then begin
      for col = col0 + 1 to col1 - 1 do
        put canvas ~row:row0 ~col horiz;
        put canvas ~row:row1 ~col horiz
      done;
      for row = row0 + 1 to row1 - 1 do
        put canvas ~row ~col:col0 vert;
        put canvas ~row ~col:col1 vert
      done;
      put canvas ~row:row0 ~col:col0 corner;
      put canvas ~row:row0 ~col:col1 corner;
      put canvas ~row:row1 ~col:col0 corner;
      put canvas ~row:row1 ~col:col1 corner
    end

let draw_text canvas ~clip ~x ~y text =
  (* [y] is a baseline; place the text in the cell row containing it. *)
  let row, col0 = cell_of_px canvas ~x ~y:(max 0 (y - (scale_y / 2))) in
  String.iteri
    (fun i c ->
      let px = x + (i * scale_x) in
      let point = { Geom.x = px; y = max 0 (y - (scale_y / 2)) } in
      if Geom.contains clip point then put canvas ~row ~col:(col0 + i) c)
    text

let draw_line canvas ~clip ~x1 ~y1 ~x2 ~y2 color =
  let c = if Color.luminance color > 0.6 then '.' else (if y1 = y2 then '-' else '|') in
  if y1 = y2 then begin
    let row, _ = cell_of_px canvas ~x:x1 ~y:y1 in
    let x0 = min x1 x2 and x3 = max x1 x2 in
    let _, col0 = cell_of_px canvas ~x:x0 ~y:y1 in
    let _, col1 = cell_of_px canvas ~x:x3 ~y:y1 in
    for col = col0 to col1 do
      let px = canvas.origin.Geom.x + (col * scale_x) in
      if Geom.contains clip { Geom.x = px; y = y1 } then put canvas ~row ~col c
    done
  end
  else if x1 = x2 then begin
    let _, col = cell_of_px canvas ~x:x1 ~y:y1 in
    let y0 = min y1 y2 and y3 = max y1 y2 in
    let row0, _ = cell_of_px canvas ~x:x1 ~y:y0 in
    let row1, _ = cell_of_px canvas ~x:x1 ~y:y3 in
    for row = row0 to row1 do
      let py = canvas.origin.Geom.y + (row * scale_y) in
      if Geom.contains clip { Geom.x = x1; y = py } then put canvas ~row ~col c
    done
  end
  else begin
    (* Diagonals: mark endpoints only (enough for diagnostics). *)
    let row, col = cell_of_px canvas ~x:x1 ~y:y1 in
    put canvas ~row ~col '*';
    let row, col = cell_of_px canvas ~x:x2 ~y:y2 in
    put canvas ~row ~col '*'
  end

let stipple_rect canvas ~clip rect bitmap color =
  match Geom.intersect rect clip with
  | None -> ()
  | Some r ->
    let c = shade color in
    let row0, col0 = cell_of_px canvas ~x:r.Geom.rx ~y:r.Geom.ry in
    let row1, col1 =
      cell_of_px canvas ~x:(r.Geom.rx + r.Geom.rwidth - 1)
        ~y:(r.Geom.ry + r.Geom.rheight - 1)
    in
    for row = row0 to row1 do
      for col = col0 to col1 do
        let by = (row - row0) mod bitmap.Bitmap.height in
        let bx = (col - col0) mod bitmap.Bitmap.width in
        if bitmap.Bitmap.bits.(by).(bx) then put canvas ~row ~col c
      done
    done

let draw_relief canvas ~clip rect ~raised =
  if raised then outline_rect canvas ~clip rect ~corner:'+' ~horiz:'-' ~vert:'|'
  else outline_rect canvas ~clip rect ~corner:'.' ~horiz:'-' ~vert:'|'

(* A WM_NAME property makes the window manager decorate the window with a
   title bar (one cell row above the window, as twm did in Figure 10). *)
let draw_title_bar canvas w bounds =
  match Hashtbl.find_opt w.Window.properties Atom.wm_name with
  | None -> ()
  | Some { Window.prop_data = title; _ } ->
    (* Window-manager decoration sits above the client area and is not
       subject to client clipping; the canvas bounds guard in [put] is
       enough. *)
    let row, col0 =
      cell_of_px canvas ~x:bounds.Geom.rx ~y:(bounds.Geom.ry - scale_y)
    in
    let cols = bounds.Geom.rwidth / scale_x in
    for col = col0 to col0 + cols - 1 do
      put canvas ~row ~col '='
    done;
    let label = " " ^ title ^ " " in
    let start = col0 + max 0 ((cols - String.length label) / 2) in
    String.iteri
      (fun i c ->
        if start + i < col0 + cols then put canvas ~row ~col:(start + i) c)
      label

(* Draw one window (background, border, display list), then recurse into
   children in stacking order. *)
let rec draw_window canvas ~clip w =
  if w.Window.mapped && not w.Window.destroyed then begin
    let bounds = Window.bounds w in
    draw_title_bar canvas w bounds;
    match Geom.intersect bounds clip with
    | None -> ()
    | Some inner_clip ->
      (* Border: one-cell frame just outside the content area. *)
      if w.Window.border_width > 0 then begin
        let frame =
          Geom.rect
            ~x:(bounds.Geom.rx - w.Window.border_width)
            ~y:(bounds.Geom.ry - w.Window.border_width)
            ~width:(bounds.Geom.rwidth + (2 * w.Window.border_width))
            ~height:(bounds.Geom.rheight + (2 * w.Window.border_width))
        in
        outline_rect canvas ~clip frame ~corner:'+' ~horiz:'-' ~vert:'|'
      end;
      (match w.Window.background with
      | Some color -> fill_rect canvas ~clip:inner_clip bounds color
      | None -> ());
      let origin = Window.root_position w in
      let to_root r =
        Geom.translate r ~dx:origin.Geom.x ~dy:origin.Geom.y
      in
      List.iter
        (fun op ->
          match op with
          | Window.Fill_rect (r, color) ->
            fill_rect canvas ~clip:inner_clip (to_root r) color
          | Window.Draw_rect (r, color) ->
            let c = if Color.luminance color > 0.6 then '.' else '-' in
            outline_rect canvas ~clip:inner_clip (to_root r) ~corner:'+'
              ~horiz:c
              ~vert:(if c = '-' then '|' else '.')
          | Window.Draw_text { tx; ty; text; color = _; font = _ } ->
            draw_text canvas ~clip:inner_clip ~x:(origin.Geom.x + tx)
              ~y:(origin.Geom.y + ty) text
          | Window.Draw_line { x1; y1; x2; y2; color } ->
            draw_line canvas ~clip:inner_clip ~x1:(origin.Geom.x + x1)
              ~y1:(origin.Geom.y + y1) ~x2:(origin.Geom.x + x2)
              ~y2:(origin.Geom.y + y2) color
          | Window.Stipple_rect (r, bitmap, color) ->
            stipple_rect canvas ~clip:inner_clip (to_root r) bitmap color
          | Window.Draw_relief { rrect; raised; rwidth = _ } ->
            draw_relief canvas ~clip:inner_clip (to_root rrect) ~raised)
        (Window.ops_in_order w);
      List.iter (draw_window canvas ~clip:inner_clip) w.Window.children
  end

let render_region server region =
  let cols = max 1 ((region.Geom.rwidth + scale_x - 1) / scale_x) in
  let rows = max 1 ((region.Geom.rheight + scale_y - 1) / scale_y) in
  let canvas =
    {
      grid = Array.make_matrix rows cols ' ';
      origin = { Geom.x = region.Geom.rx; y = region.Geom.ry };
      cols;
      rows;
    }
  in
  draw_window canvas ~clip:region (Server.root_window server);
  let buf = Buffer.create (rows * (cols + 1)) in
  Array.iter
    (fun row ->
      (* Trim trailing blanks per line for readable dumps. *)
      let line = String.init cols (Array.get row) in
      let len = ref (String.length line) in
      while !len > 0 && line.[!len - 1] = ' ' do
        decr len
      done;
      Buffer.add_string buf (String.sub line 0 !len);
      Buffer.add_char buf '\n')
    canvas.grid;
  Buffer.contents buf

let render server ?window () =
  let target =
    match window with
    | Some id -> (
      match Server.lookup_window server id with
      | Some w -> w
      | None -> Server.root_window server)
    | None -> Server.root_window server
  in
  let bounds = Window.bounds target in
  let bw = target.Window.border_width in
  (* Leave room for the window manager's title bar when there is one. *)
  let title_h =
    if Hashtbl.mem target.Window.properties Atom.wm_name then scale_y else 0
  in
  let bounds =
    Geom.rect ~x:(bounds.Geom.rx - bw)
      ~y:(bounds.Geom.ry - bw - title_h)
      ~width:(bounds.Geom.rwidth + (2 * bw))
      ~height:(bounds.Geom.rheight + (2 * bw) + title_h)
  in
  render_region server bounds
