(** Plane geometry for the simulated X server: points, sizes and
    rectangles, all in integer pixel coordinates. *)

type point = { x : int; y : int }

type size = { width : int; height : int }

type rect = { rx : int; ry : int; rwidth : int; rheight : int }

val rect : x:int -> y:int -> width:int -> height:int -> rect

val rect_of : point -> size -> rect

val contains : rect -> point -> bool
(** Point-in-rectangle test (right and bottom edges exclusive). *)

val intersect : rect -> rect -> rect option
(** Intersection, or [None] when the rectangles are disjoint or the result
    would be empty. *)

val translate : rect -> dx:int -> dy:int -> rect

val union : rect -> rect -> rect
(** Smallest rectangle covering both (an empty argument is ignored). *)

val area : rect -> int
(** Pixel area; 0 for empty rectangles. *)

val inflate : rect -> dx:int -> dy:int -> rect
(** Grow by [dx]/[dy] pixels on every side. *)

val is_empty : rect -> bool

val pp_rect : Format.formatter -> rect -> unit
