open Xsim

let failf = Tcl.Interp.failf

type position = int * int (* line (1-based), char (0-based) *)

type state = {
  mutable lines : string array; (* always at least one line *)
  mutable cursor : position;
  mutable top : int; (* first visible line, 1-based *)
  mutable sel : (position * position) option; (* normalized: start <= stop *)
  mutable anchor : position;
  mutable focused : bool;
}

type Tk.Core.wdata += Text_data of state

let data w =
  match w.Tk.Core.data with
  | Text_data s -> s
  | _ -> failf "%s is not a text widget" w.Tk.Core.path

let contents w = String.concat "\n" (Array.to_list (data w).lines)

let cursor w = (data w).cursor

let specs =
  Tk.Core.
    [
      spec ~switch:"-font" ~db:"font" ~cls:"Font" ~default:"fixed" Ot_font;
      spec ~switch:"-foreground" ~db:"foreground" ~cls:"Foreground"
        ~default:"black" Ot_color;
      spec ~switch:"-fg" ~db:"foreground" ~cls:"Foreground" ~default:"black"
        Ot_color;
      spec ~switch:"-background" ~db:"background" ~cls:"Background"
        ~default:"white" Ot_color;
      spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"white"
        Ot_color;
      spec ~switch:"-selectbackground" ~db:"selectBackground" ~cls:"Foreground"
        ~default:"gray75" Ot_color;
      spec ~switch:"-width" ~db:"width" ~cls:"Width" ~default:"40" Ot_int;
      spec ~switch:"-height" ~db:"height" ~cls:"Height" ~default:"10" Ot_int;
      spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
        ~default:"2" Ot_pixels;
      spec ~switch:"-relief" ~db:"relief" ~cls:"Relief" ~default:"sunken"
        Ot_relief;
      spec ~switch:"-scroll" ~db:"scrollCommand" ~cls:"ScrollCommand"
        ~default:"" Ot_string;
    ]

(* ------------------------------------------------------------------ *)
(* Positions *)

let clamp_position s (line, char) =
  let line = max 1 (min line (Array.length s.lines)) in
  let char = max 0 (min char (String.length s.lines.(line - 1))) in
  (line, char)

let end_position s =
  let last = Array.length s.lines in
  (last, String.length s.lines.(last - 1))

let parse_index w spec =
  let s = data w in
  match spec with
  | "end" -> end_position s
  | "insert" | "cursor" -> s.cursor
  | _ -> (
    match String.index_opt spec '.' with
    | Some i -> (
      let l = String.sub spec 0 i in
      let c = String.sub spec (i + 1) (String.length spec - i - 1) in
      match (int_of_string_opt l, c) with
      | Some l, "end" ->
        let l = max 1 (min l (Array.length s.lines)) in
        (l, String.length s.lines.(l - 1))
      | Some l, c -> (
        match int_of_string_opt c with
        | Some c -> clamp_position s (l, c)
        | None -> failf "bad text index \"%s\"" spec)
      | None, _ -> failf "bad text index \"%s\"" spec)
    | None -> failf "bad text index \"%s\"" spec)

let format_index (line, char) = Printf.sprintf "%d.%d" line char

let position_leq a b = compare a b <= 0

(* ------------------------------------------------------------------ *)
(* Buffer edits *)

let update_scroll w =
  let s = data w in
  let command = Tk.Core.get_string w "-scroll" in
  if command <> "" then begin
    let total = Array.length s.lines in
    let window = Tk.Core.get_int w "-height" in
    let first = s.top - 1 in
    let last = min (total - 1) (first + window - 1) in
    Wutil.invoke_widget_script w
      (Printf.sprintf "%s %d %d %d %d" command total window first last)
  end

let touch w =
  Tk.Core.schedule_redraw w;
  update_scroll w

let insert_at w (line, char) text =
  let s = data w in
  let line, char = clamp_position s (line, char) in
  let current = s.lines.(line - 1) in
  let before = String.sub current 0 char in
  let after = String.sub current char (String.length current - char) in
  let inserted = String.split_on_char '\n' (before ^ text ^ after) in
  let head = Array.sub s.lines 0 (line - 1) in
  let tail = Array.sub s.lines line (Array.length s.lines - line) in
  s.lines <- Array.concat [ head; Array.of_list inserted; tail ];
  (* Move the cursor if it sat at or after the insertion point. *)
  let new_cursor =
    let cl, cc = s.cursor in
    if (cl, cc) < (line, char) then s.cursor
    else begin
      let text_lines = String.split_on_char '\n' text in
      let added = List.length text_lines - 1 in
      if cl = line && cc >= char then
        if added = 0 then (cl, cc + String.length text)
        else
          ( cl + added,
            String.length (List.nth text_lines added) + (cc - char) )
      else (cl + added, cc)
    end
  in
  s.cursor <- clamp_position s new_cursor;
  s.sel <- None;
  touch w

let delete_range w p1 p2 =
  let s = data w in
  let (l1, c1), (l2, c2) =
    let a = clamp_position s p1 and b = clamp_position s p2 in
    if position_leq a b then (a, b) else (b, a)
  in
  let before = String.sub s.lines.(l1 - 1) 0 c1 in
  let last = s.lines.(l2 - 1) in
  let after = String.sub last c2 (String.length last - c2) in
  let head = Array.sub s.lines 0 (l1 - 1) in
  let tail = Array.sub s.lines l2 (Array.length s.lines - l2) in
  s.lines <- Array.concat [ head; [| before ^ after |]; tail ];
  if s.lines = [||] then s.lines <- [| "" |];
  s.cursor <- clamp_position s (l1, c1);
  s.sel <- None;
  s.top <- max 1 (min s.top (Array.length s.lines));
  touch w

let get_range w p1 p2 =
  let s = data w in
  let (l1, c1), (l2, c2) =
    let a = clamp_position s p1 and b = clamp_position s p2 in
    if position_leq a b then (a, b) else (b, a)
  in
  if l1 = l2 then String.sub s.lines.(l1 - 1) c1 (c2 - c1)
  else begin
    let buf = Buffer.create 64 in
    let first = s.lines.(l1 - 1) in
    Buffer.add_string buf (String.sub first c1 (String.length first - c1));
    for l = l1 + 1 to l2 - 1 do
      Buffer.add_char buf '\n';
      Buffer.add_string buf s.lines.(l - 1)
    done;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.sub s.lines.(l2 - 1) 0 c2);
    Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* Selection *)

let claim_selection w =
  let provider () =
    let s = data w in
    match s.sel with None -> "" | Some (a, b) -> get_range w a b
  in
  Tk.Selection.own w ~provider

let set_selection w a b =
  let s = data w in
  let a = clamp_position s a and b = clamp_position s b in
  s.sel <- Some (if position_leq a b then (a, b) else (b, a));
  claim_selection w;
  Tk.Core.schedule_redraw w

(* ------------------------------------------------------------------ *)
(* Input behaviour *)

let position_at w ~x ~y =
  let s = data w in
  let font = Wutil.widget_font w in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let line = s.top + ((y - bw) / Font.line_height font) in
  let char = (x - bw - 2) / font.Font.char_width in
  clamp_position s (line, char)

let handle_key w keysym =
  let s = data w in
  let l, c = s.cursor in
  match keysym with
  | "Return" ->
    insert_at w s.cursor "\n";
    s.cursor <- (l + 1, 0)
  | "BackSpace" ->
    if c > 0 then delete_range w (l, c - 1) (l, c)
    else if l > 1 then begin
      let prev_len = String.length s.lines.(l - 2) in
      delete_range w (l - 1, prev_len) (l, 0)
    end
  | "Delete" -> delete_range w (l, c) (l, c + 1)
  | "Left" ->
    s.cursor <- clamp_position s (if c > 0 then (l, c - 1) else (l - 1, max_int));
    Tk.Core.schedule_redraw w
  | "Right" ->
    let line_len = String.length s.lines.(l - 1) in
    s.cursor <- clamp_position s (if c < line_len then (l, c + 1) else (l + 1, 0));
    Tk.Core.schedule_redraw w
  | "Up" ->
    s.cursor <- clamp_position s (l - 1, c);
    Tk.Core.schedule_redraw w
  | "Down" ->
    s.cursor <- clamp_position s (l + 1, c);
    Tk.Core.schedule_redraw w
  | "Home" ->
    s.cursor <- (l, 0);
    Tk.Core.schedule_redraw w
  | "End" ->
    s.cursor <- (l, String.length s.lines.(l - 1));
    Tk.Core.schedule_redraw w
  | "Tab" | "Escape" -> ()
  | _ -> (
    match Event.char_of_keysym keysym with
    | Some ch when ch >= ' ' && ch < '\127' ->
      insert_at w s.cursor (String.make 1 ch)
    | Some _ | None -> ())

let handle_event w (event : Event.t) =
  let s = data w in
  match event with
  | Event.Key_press { keysym; key_state; _ } ->
    if not key_state.Event.control then handle_key w keysym
  | Event.Button_press { button = 1; bx; by; _ } ->
    let p = position_at w ~x:bx ~y:by in
    s.cursor <- p;
    s.anchor <- p;
    s.sel <- None;
    Tk.Core.set_focus w.Tk.Core.app (Some w.Tk.Core.path);
    Tk.Core.schedule_redraw w
  | Event.Motion { mx; my; motion_state; _ } when motion_state.Event.button1 ->
    set_selection w s.anchor (position_at w ~x:mx ~y:my)
  | Event.Selection_clear _ ->
    s.sel <- None;
    Tk.Core.schedule_redraw w
  | Event.Focus_in ->
    s.focused <- true;
    Tk.Core.schedule_redraw w
  | Event.Focus_out ->
    s.focused <- false;
    Tk.Core.schedule_redraw w
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Display *)

let display w =
  let s = data w in
  let app = w.Tk.Core.app in
  let font = Wutil.widget_font w in
  Wutil.draw_background w ();
  Wutil.draw_relief_border w ();
  let gc = Tk.Core.widget_gc w ~fg:"-foreground" ~font:"-font" () in
  let sel_gc = Tk.Core.widget_gc w ~fg:"-selectbackground" () in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let lh = Font.line_height font in
  let rows = max 1 ((w.Tk.Core.height - (2 * bw)) / lh) in
  for row = 0 to rows - 1 do
    let l = s.top + row in
    if l <= Array.length s.lines then begin
      let y = bw + (row * lh) in
      (* Selection highlight for the covered span of this line. *)
      (match s.sel with
      | Some ((l1, c1), (l2, c2)) when l >= l1 && l <= l2 ->
        let line_len = String.length s.lines.(l - 1) in
        let from_c = if l = l1 then c1 else 0 in
        let to_c = if l = l2 then c2 else line_len in
        if to_c > from_c then
          Server.fill_rect app.Tk.Core.conn w.Tk.Core.win sel_gc
            (Geom.rect
               ~x:(bw + 2 + (from_c * font.Font.char_width))
               ~y
               ~width:((to_c - from_c) * font.Font.char_width)
               ~height:lh)
      | _ -> ());
      Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc ~x:(bw + 2)
        ~y:(y + font.Font.ascent) s.lines.(l - 1)
    end
  done;
  (* The insertion cursor. *)
  if s.focused then begin
    let cl, cc = s.cursor in
    if cl >= s.top && cl < s.top + rows then begin
      let x = bw + 2 + (cc * font.Font.char_width) in
      let y = bw + ((cl - s.top) * lh) in
      Server.draw_line app.Tk.Core.conn w.Tk.Core.win gc ~x1:x ~y1:y ~x2:x
        ~y2:(y + lh - 1)
    end
  end

let compute_geometry w =
  let font = Wutil.widget_font w in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  Tk.Core.request_size w
    ~width:((Tk.Core.get_int w "-width" * font.Font.char_width) + (2 * bw) + 4)
    ~height:((Tk.Core.get_int w "-height" * Font.line_height font) + (2 * bw))

(* ------------------------------------------------------------------ *)
(* Widget command *)

let subcommands w words =
  let s = data w in
  let ok = Tcl.Interp.ok in
  match words with
  | [ _; "insert"; index; text ] ->
    insert_at w (parse_index w index) text;
    ok ""
  | [ _; "delete"; index ] ->
    let l, c = parse_index w index in
    delete_range w (l, c) (l, c + 1);
    ok ""
  | [ _; "delete"; index1; index2 ] ->
    delete_range w (parse_index w index1) (parse_index w index2);
    ok ""
  | [ _; "get"; index ] ->
    let l, c = parse_index w index in
    ok (get_range w (l, c) (l, c + 1))
  | [ _; "get"; index1; index2 ] ->
    ok (get_range w (parse_index w index1) (parse_index w index2))
  | [ _; "index"; index ] -> ok (format_index (parse_index w index))
  | [ _; "mark"; "set"; ("insert" | "cursor"); index ] ->
    s.cursor <- parse_index w index;
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "mark"; ("insert" | "cursor") ] -> ok (format_index s.cursor)
  | [ _; ("view" | "yview") ] -> ok (string_of_int (s.top - 1))
  | [ _; ("view" | "yview"); line ] -> (
    match int_of_string_opt line with
    | Some l ->
      (* Scrollbars speak 0-based units. *)
      s.top <- max 1 (min (l + 1) (Array.length s.lines));
      touch w;
      ok ""
    | None -> failf "bad line number \"%s\"" line)
  | [ _; "tag"; "add"; "sel"; index1; index2 ] ->
    set_selection w (parse_index w index1) (parse_index w index2);
    ok ""
  | [ _; "tag"; "remove"; "sel" ] ->
    s.sel <- None;
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "tag"; "ranges"; "sel" ] ->
    ok
      (match s.sel with
      | None -> ""
      | Some (a, b) ->
        Tcl.Tcl_list.format [ format_index a; format_index b ])
  | [ _; "lines" ] -> ok (string_of_int (Array.length s.lines))
  | _ :: sub :: _ -> failf "bad option \"%s\" for %s" sub w.Tk.Core.path
  | _ -> Tcl.Interp.wrong_args (w.Tk.Core.path ^ " option ?arg ...?")

let make_class () =
  let cls = Tk.Core.make_class ~name:"Text" ~specs () in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      compute_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- display;
  cls.Tk.Core.handle_event <- handle_event;
  cls.Tk.Core.subcommands <- subcommands;
  cls

let install app =
  Wutil.standard_creator app ~command:"text" ~make:make_class
    ~data:(fun () ->
      Text_data
        {
          lines = [| "" |];
          cursor = (1, 0);
          top = 1;
          sel = None;
          anchor = (1, 0);
          focused = false;
        })
    ~subs:
      Tcl.Interp.
        [
          subsig "insert" 2 ~max:2;
          subsig "delete" 1 ~max:2;
          subsig "get" 1 ~max:2;
          subsig "index" 1 ~max:1;
          subsig "mark" 1 ~max:3;
          subsig "view" 0 ~max:1;
          subsig "yview" 0 ~max:1;
          subsig "tag" 2 ~max:4;
          subsig "lines" 0 ~max:0;
        ]
    ()
