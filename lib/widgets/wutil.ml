open Xsim

let widget_font w = Tk.Core.get_font w "-font"

let draw_background w ?color () =
  let color_name =
    match color with Some c -> c | None -> Tk.Core.cget w "-background"
  in
  let gc = Tk.Core.widget_gc w ~fg:color_name () in
  Server.fill_rect w.Tk.Core.app.Tk.Core.conn w.Tk.Core.win gc
    (Geom.rect ~x:0 ~y:0 ~width:w.Tk.Core.width ~height:w.Tk.Core.height)

let draw_relief_border w ?relief () =
  let relief =
    match relief with Some r -> r | None -> Tk.Core.get_relief w "-relief"
  in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  if bw > 0 && relief <> Tk.Core.Flat then
    Server.draw_relief w.Tk.Core.app.Tk.Core.conn w.Tk.Core.win
      (Geom.rect ~x:0 ~y:0 ~width:w.Tk.Core.width ~height:w.Tk.Core.height)
      ~raised:(relief = Tk.Core.Raised) ~width:bw

let text_block_size font text =
  let lines = String.split_on_char '\n' text in
  let width =
    List.fold_left (fun acc l -> max acc (Font.text_width font l)) 0 lines
  in
  (width, List.length lines * Font.line_height font)

let draw_anchored_text w ?(fg = "-foreground") ?(font = "-font") ?(dx = 0)
    ~text ~anchor () =
  let app = w.Tk.Core.app in
  let gc = Tk.Core.widget_gc w ~fg ~font () in
  let fnt =
    match gc.Gcontext.font with
    | Some f -> f
    | None -> Font.fallback ()
  in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let inset = bw + 2 in
  let avail_x = dx + inset in
  let avail_w = w.Tk.Core.width - avail_x - inset in
  let avail_h = w.Tk.Core.height - (2 * inset) in
  let block_w, block_h = text_block_size fnt text in
  let x0 =
    match anchor with
    | Tk.Core.NW | Tk.Core.W | Tk.Core.SW -> avail_x
    | Tk.Core.NE | Tk.Core.E | Tk.Core.SE -> avail_x + avail_w - block_w
    | _ -> avail_x + ((avail_w - block_w) / 2)
  in
  let y0 =
    match anchor with
    | Tk.Core.NW | Tk.Core.N | Tk.Core.NE -> inset
    | Tk.Core.SW | Tk.Core.S | Tk.Core.SE -> inset + avail_h - block_h
    | _ -> inset + ((avail_h - block_h) / 2)
  in
  List.iteri
    (fun i line ->
      let baseline = y0 + (i * Font.line_height fnt) + fnt.Font.ascent in
      Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc ~x:x0 ~y:baseline line)
    (String.split_on_char '\n' text)

(* Export the class's runtime configure table (and optional widget
   subcommand arities) into the interpreter's signature registry so the
   lint layer shares one source of truth with execution. *)
let declare_widget app ~command ?(subs = []) cls =
  let options = List.map (fun s -> s.Tk.Core.switch) cls.Tk.Core.specs in
  Tcl.Interp.register_signature app.Tk.Core.interp
    (Tcl.Interp.signature command 1
       ~usage:(command ^ " pathName ?options?")
       ~widget:
         {
           Tcl.Interp.ws_class = cls.Tk.Core.cname;
           ws_options = options;
           ws_subs = subs;
         })

let standard_creator app ~command ~make ?data ?post_create ?(subs = []) () =
  declare_widget app ~command ~subs (make ());
  Tcl.Interp.register app.Tk.Core.interp command (fun _interp words ->
      match words with
      | _ :: path :: args ->
        let data = Option.map (fun f -> f ()) data in
        let w = Tk.Core.make_widget app ~path ?data (make ()) ~args in
        (match post_create with Some f -> f w | None -> ());
        Tcl.Interp.ok path
      | _ ->
        Tcl.Interp.wrong_args
          (command ^ " pathName ?options?"))

let invoke_widget_script w script =
  if script <> "" then
    Tk.Core.eval_callback w.Tk.Core.app
      ~context:(Printf.sprintf "command bound to %s" w.Tk.Core.path)
      script

let inside w ~x ~y =
  x >= 0 && y >= 0 && x < w.Tk.Core.width && y < w.Tk.Core.height
