open Xsim

let failf = Tcl.Interp.failf

type state = {
  mutable total : int;
  mutable window : int;
  mutable first : int;
  mutable last : int;
  mutable dragging : int option; (* pixel offset of press within slider *)
}

type Tk.Core.wdata += Scrollbar_data of state

let data w =
  match w.Tk.Core.data with
  | Scrollbar_data s -> s
  | _ -> failf "%s is not a scrollbar" w.Tk.Core.path

let view_state w =
  let s = data w in
  (s.total, s.window, s.first, s.last)

let specs =
  Tk.Core.
    [
      spec ~switch:"-command" ~db:"command" ~cls:"Command" ~default:""
        Ot_string;
      spec ~switch:"-orient" ~db:"orient" ~cls:"Orient" ~default:"vertical"
        Ot_string;
      spec ~switch:"-width" ~db:"width" ~cls:"Width" ~default:"15" Ot_pixels;
      spec ~switch:"-length" ~db:"length" ~cls:"Length" ~default:"100"
        Ot_pixels;
      spec ~switch:"-foreground" ~db:"foreground" ~cls:"Foreground"
        ~default:"gray50" Ot_color;
      spec ~switch:"-fg" ~db:"foreground" ~cls:"Foreground" ~default:"gray50"
        Ot_color;
      spec ~switch:"-background" ~db:"background" ~cls:"Background"
        ~default:"#cccccc" Ot_color;
      spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"#cccccc"
        Ot_color;
      spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
        ~default:"2" Ot_pixels;
      spec ~switch:"-relief" ~db:"relief" ~cls:"Relief" ~default:"sunken"
        Ot_relief;
    ]

let vertical w = Tk.Core.get_string w "-orient" <> "horizontal"

let arrow_size w = Tk.Core.get_pixels w "-width"

(* The pixel span available to the slider (between the two arrows). *)
let trough_span w =
  let length = if vertical w then w.Tk.Core.height else w.Tk.Core.width in
  max 1 (length - (2 * arrow_size w))

(* Slider position in pixels within the trough. *)
let slider_extent w =
  let s = data w in
  let span = trough_span w in
  if s.total <= 0 then (0, span)
  else
    let clamp v = max 0 (min span v) in
    let start = clamp (s.first * span / s.total) in
    let stop = clamp ((s.last + 1) * span / s.total) in
    (start, max (start + 4) stop)

(* Ask the controlled widget to scroll so that [unit] is first. *)
let scroll_to w unit =
  let command = Tk.Core.get_string w "-command" in
  if command <> "" then
    Wutil.invoke_widget_script w (command ^ " " ^ string_of_int unit)

let unit_at w pos =
  let s = data w in
  let span = trough_span w in
  if s.total <= 0 then 0 else (pos - arrow_size w) * s.total / span

let handle_press w ~x ~y =
  let s = data w in
  let pos = if vertical w then y else x in
  let length = if vertical w then w.Tk.Core.height else w.Tk.Core.width in
  let asize = arrow_size w in
  if pos < asize then scroll_to w (s.first - 1)
  else if pos >= length - asize then scroll_to w (s.first + 1)
  else begin
    let start, stop = slider_extent w in
    let tp = pos - asize in
    if tp < start then scroll_to w (max 0 (s.first - s.window))
    else if tp >= stop then scroll_to w (s.first + s.window)
    else s.dragging <- Some (tp - start)
  end

let handle_drag w ~x ~y =
  let s = data w in
  match s.dragging with
  | None -> ()
  | Some grab ->
    let pos = if vertical w then y else x in
    let tp = pos - arrow_size w - grab in
    scroll_to w (unit_at w (tp + arrow_size w))

let handle_event w (event : Event.t) =
  let s = data w in
  match event with
  | Event.Button_press { button = 1; bx; by; _ } -> handle_press w ~x:bx ~y:by
  | Event.Motion { mx; my; motion_state; _ } when motion_state.Event.button1 ->
    handle_drag w ~x:mx ~y:my
  | Event.Button_release { button = 1; _ } -> s.dragging <- None
  | _ -> ()

let display w =
  let app = w.Tk.Core.app in
  Wutil.draw_background w ();
  Wutil.draw_relief_border w ();
  let gc = Tk.Core.widget_gc w ~fg:"-foreground" () in
  let asize = arrow_size w in
  let start, stop = slider_extent w in
  if vertical w then begin
    (* Arrows *)
    Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc ~x:(w.Tk.Core.width / 2)
      ~y:(asize / 2) "^";
    Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc ~x:(w.Tk.Core.width / 2)
      ~y:(w.Tk.Core.height - (asize / 2)) "v";
    Server.fill_rect app.Tk.Core.conn w.Tk.Core.win gc
      (Geom.rect ~x:3 ~y:(asize + start) ~width:(w.Tk.Core.width - 6)
         ~height:(stop - start))
  end
  else begin
    Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc ~x:(asize / 2)
      ~y:(w.Tk.Core.height / 2) "<";
    Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc
      ~x:(w.Tk.Core.width - (asize / 2))
      ~y:(w.Tk.Core.height / 2) ">";
    Server.fill_rect app.Tk.Core.conn w.Tk.Core.win gc
      (Geom.rect ~x:(asize + start) ~y:3 ~width:(stop - start)
         ~height:(w.Tk.Core.height - 6))
  end

let compute_geometry w =
  let width = Tk.Core.get_pixels w "-width" in
  let length = Tk.Core.get_pixels w "-length" in
  if vertical w then Tk.Core.request_size w ~width ~height:length
  else Tk.Core.request_size w ~width:length ~height:width

let subcommands w words =
  let s = data w in
  let ok = Tcl.Interp.ok in
  match words with
  | [ _; "set"; total; window; first; last ] -> (
    match
      ( int_of_string_opt total,
        int_of_string_opt window,
        int_of_string_opt first,
        int_of_string_opt last )
    with
    | Some total, Some window, Some first, Some last ->
      s.total <- total;
      s.window <- window;
      s.first <- first;
      s.last <- last;
      Tk.Core.schedule_redraw w;
      ok ""
    | _ -> failf "non-integer argument to %s set" w.Tk.Core.path)
  | [ _; "get" ] ->
    ok
      (Tcl.Tcl_list.format
         (List.map string_of_int [ s.total; s.window; s.first; s.last ]))
  | _ :: sub :: _ -> failf "bad option \"%s\" for %s" sub w.Tk.Core.path
  | _ -> Tcl.Interp.wrong_args (w.Tk.Core.path ^ " option ?arg ...?")

let make_class () =
  let cls = Tk.Core.make_class ~name:"Scrollbar" ~specs () in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      compute_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- display;
  cls.Tk.Core.handle_event <- handle_event;
  cls.Tk.Core.subcommands <- subcommands;
  cls

let install app =
  Wutil.standard_creator app ~command:"scrollbar" ~make:make_class
    ~data:(fun () ->
      Scrollbar_data { total = 0; window = 1; first = 0; last = 0; dragging = None })
    ~subs:Tcl.Interp.[ subsig "set" 4 ~max:4; subsig "get" 0 ~max:0 ]
    ()
