open Xsim

let failf = Tcl.Interp.failf

type kind = Label | Push | Check | Radio

type state = {
  kind : kind;
  mutable active : bool;   (* pointer inside: use active colors *)
  mutable pressed : bool;  (* button 1 down: relief sunken *)
  mutable flashes : int;
}

type Tk.Core.wdata += Button_data of state

let data w =
  match w.Tk.Core.data with
  | Button_data s -> s
  | _ -> failf "%s is not a button-like widget" w.Tk.Core.path

let flash_count w = (data w).flashes

(* ------------------------------------------------------------------ *)
(* Option tables *)

let common_specs ~relief_default =
  Tk.Core.
    [
      spec ~switch:"-text" ~db:"text" ~cls:"Text" ~default:"" Ot_string;
      spec ~switch:"-font" ~db:"font" ~cls:"Font" ~default:"fixed" Ot_font;
      spec ~switch:"-foreground" ~db:"foreground" ~cls:"Foreground"
        ~default:"black" Ot_color;
      spec ~switch:"-fg" ~db:"foreground" ~cls:"Foreground" ~default:"black"
        Ot_color;
      spec ~switch:"-background" ~db:"background" ~cls:"Background"
        ~default:"#cccccc" Ot_color;
      spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"#cccccc"
        Ot_color;
      spec ~switch:"-activebackground" ~db:"activeBackground"
        ~cls:"Foreground" ~default:"#ececec" Ot_color;
      spec ~switch:"-activeforeground" ~db:"activeForeground"
        ~cls:"Background" ~default:"black" Ot_color;
      spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
        ~default:"2" Ot_pixels;
      spec ~switch:"-relief" ~db:"relief" ~cls:"Relief"
        ~default:relief_default Ot_relief;
      spec ~switch:"-padx" ~db:"padX" ~cls:"Pad" ~default:"2" Ot_pixels;
      spec ~switch:"-pady" ~db:"padY" ~cls:"Pad" ~default:"2" Ot_pixels;
      spec ~switch:"-anchor" ~db:"anchor" ~cls:"Anchor" ~default:"center"
        Ot_anchor;
      spec ~switch:"-width" ~db:"width" ~cls:"Width" ~default:"0" Ot_int;
      spec ~switch:"-height" ~db:"height" ~cls:"Height" ~default:"0" Ot_int;
      spec ~switch:"-state" ~db:"state" ~cls:"State" ~default:"normal"
        Ot_string;
      spec ~switch:"-cursor" ~db:"cursor" ~cls:"Cursor" ~default:"" Ot_cursor;
    ]

let command_spec =
  Tk.Core.spec ~switch:"-command" ~db:"command" ~cls:"Command" ~default:""
    Tk.Core.Ot_string

let variable_specs ~default_var =
  Tk.Core.
    [
      spec ~switch:"-variable" ~db:"variable" ~cls:"Variable"
        ~default:default_var Ot_string;
      spec ~switch:"-value" ~db:"value" ~cls:"Value" ~default:"" Ot_string;
    ]

let specs_for kind =
  match kind with
  | Label -> common_specs ~relief_default:"flat"
  | Push -> common_specs ~relief_default:"raised" @ [ command_spec ]
  | Check ->
    common_specs ~relief_default:"raised"
    @ [ command_spec ]
    @ variable_specs ~default_var:"selectedButton"
  | Radio ->
    common_specs ~relief_default:"raised"
    @ [ command_spec ]
    @ variable_specs ~default_var:"selectedButton"

(* ------------------------------------------------------------------ *)
(* Selection state via Tcl variables *)

let indicator_size = 12

let variable_name w = Tk.Core.get_string w "-variable"

let radio_value w =
  let v = Tk.Core.get_string w "-value" in
  if v = "" then Tk.Path.basename w.Tk.Core.path else v

let selected w =
  let s = data w in
  let var = variable_name w in
  match Tcl.Interp.get_var w.Tk.Core.app.Tk.Core.interp var with
  | None -> false
  | Some v -> (
    match s.kind with
    | Check -> v <> "0" && v <> ""
    | Radio -> v = radio_value w
    | Label | Push -> false)

let set_variable w value =
  Tcl.Interp.set_var w.Tk.Core.app.Tk.Core.interp (variable_name w) value

(* ------------------------------------------------------------------ *)
(* Geometry and display *)

let compute_geometry w =
  let s = data w in
  let font = Wutil.widget_font w in
  let text = Tk.Core.get_string w "-text" in
  let block_w, block_h = Wutil.text_block_size font text in
  let char_width = Tk.Core.get_int w "-width" in
  let char_height = Tk.Core.get_int w "-height" in
  let text_w =
    if char_width > 0 then char_width * font.Font.char_width else block_w
  in
  let text_h =
    if char_height > 0 then char_height * Font.line_height font
    else max block_h (Font.line_height font)
  in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let padx = Tk.Core.get_pixels w "-padx" in
  let pady = Tk.Core.get_pixels w "-pady" in
  let indicator =
    match s.kind with
    | Check | Radio -> indicator_size + 6
    | Label | Push -> 0
  in
  Tk.Core.request_size w
    ~width:(text_w + indicator + (2 * (bw + padx + 2)))
    ~height:(text_h + (2 * (bw + pady + 2)))

let display w =
  let s = data w in
  let app = w.Tk.Core.app in
  let background =
    if s.active && s.kind <> Label then "-activebackground" else "-background"
  in
  let foreground =
    if s.active && s.kind <> Label then "-activeforeground" else "-foreground"
  in
  Wutil.draw_background w ~color:(Tk.Core.cget w background) ();
  let relief =
    if s.pressed then Tk.Core.Sunken else Tk.Core.get_relief w "-relief"
  in
  Wutil.draw_relief_border w ~relief ();
  let indicator =
    match s.kind with Check | Radio -> indicator_size + 6 | Label | Push -> 0
  in
  (match s.kind with
  | Check | Radio ->
    let gc = Tk.Core.widget_gc w ~fg:foreground () in
    let bw = Tk.Core.get_pixels w "-borderwidth" in
    let y = (w.Tk.Core.height - indicator_size) / 2 in
    let box =
      Geom.rect ~x:(bw + 4) ~y ~width:indicator_size ~height:indicator_size
    in
    if selected w then Server.fill_rect app.Tk.Core.conn w.Tk.Core.win gc box
    else Server.draw_rect app.Tk.Core.conn w.Tk.Core.win gc box
  | Label | Push -> ());
  Wutil.draw_anchored_text w ~fg:foreground ~dx:indicator
    ~text:(Tk.Core.get_string w "-text")
    ~anchor:(Tk.Core.get_anchor w "-anchor")
    ()

(* ------------------------------------------------------------------ *)
(* Behaviour *)

let invoke w =
  let s = data w in
  if Tk.Core.get_string w "-state" <> "disabled" then begin
    (match s.kind with
    | Check -> set_variable w (if selected w then "0" else "1")
    | Radio -> set_variable w (radio_value w)
    | Label | Push -> ());
    Tk.Core.schedule_redraw w;
    (* Radio siblings sharing the variable must repaint too. *)
    (match s.kind with
    | Radio | Check ->
      Hashtbl.iter
        (fun _ other ->
          match other.Tk.Core.data with
          | Button_data os when os.kind = Radio || os.kind = Check ->
            if
              (not (other == w))
              && variable_name other = variable_name w
            then Tk.Core.schedule_redraw other
          | _ -> ())
        w.Tk.Core.app.Tk.Core.widgets
    | Label | Push -> ());
    match s.kind with
    | Push | Check | Radio ->
      Wutil.invoke_widget_script w (Tk.Core.get_string w "-command")
    | Label -> ()
  end

let flash w =
  let s = data w in
  if s.kind <> Label then begin
    s.flashes <- s.flashes + 1;
    (* Alternate active/normal colors a few times; each toggle repaints
       synchronously so the flashing is actually drawn. *)
    for _ = 1 to 2 do
      s.active <- not s.active;
      display w
    done;
    Tk.Core.schedule_redraw w
  end

let handle_event w (event : Event.t) =
  let s = data w in
  if s.kind <> Label && Tk.Core.get_string w "-state" <> "disabled" then
    match event with
    | Event.Enter _ ->
      s.active <- true;
      Tk.Core.schedule_redraw w
    | Event.Leave _ ->
      s.active <- false;
      s.pressed <- false;
      Tk.Core.schedule_redraw w
    | Event.Button_press { button = 1; _ } ->
      s.pressed <- true;
      Tk.Core.schedule_redraw w
    | Event.Button_release { button = 1; bx; by; _ } ->
      if s.pressed then begin
        s.pressed <- false;
        Tk.Core.schedule_redraw w;
        if Wutil.inside w ~x:bx ~y:by then invoke w
      end
    | _ -> ()

let subcommands w words =
  let s = data w in
  let ok = Tcl.Interp.ok in
  match words with
  | [ _; "flash" ] ->
    flash w;
    ok ""
  | [ _; "invoke" ] when s.kind <> Label ->
    invoke w;
    ok ""
  | [ _; "activate" ] ->
    s.active <- true;
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "deactivate" ] ->
    s.active <- false;
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "select" ] when s.kind = Check || s.kind = Radio ->
    set_variable w (match s.kind with Check -> "1" | _ -> radio_value w);
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "deselect" ] when s.kind = Check || s.kind = Radio ->
    set_variable w (if s.kind = Check then "0" else "");
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "toggle" ] when s.kind = Check ->
    set_variable w (if selected w then "0" else "1");
    Tk.Core.schedule_redraw w;
    ok ""
  | _ :: sub :: _ -> failf "bad option \"%s\" for %s" sub w.Tk.Core.path
  | _ -> Tcl.Interp.wrong_args (w.Tk.Core.path ^ " option ?arg ...?")

(* ------------------------------------------------------------------ *)
(* Class construction *)

let class_name_of = function
  | Label -> "Label"
  | Push -> "Button"
  | Check -> "Checkbutton"
  | Radio -> "Radiobutton"

let make_class kind =
  let cls =
    Tk.Core.make_class ~name:(class_name_of kind) ~specs:(specs_for kind) ()
  in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      compute_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- display;
  cls.Tk.Core.handle_event <- handle_event;
  cls.Tk.Core.subcommands <- subcommands;
  cls

let creator app kind command =
  let subs =
    List.map
      (fun name -> Tcl.Interp.subsig name 0 ~max:0)
      (match kind with
      | Label -> [ "flash"; "activate"; "deactivate" ]
      | Push -> [ "flash"; "invoke"; "activate"; "deactivate" ]
      | Check ->
        [
          "flash"; "invoke"; "activate"; "deactivate"; "select"; "deselect";
          "toggle";
        ]
      | Radio ->
        [ "flash"; "invoke"; "activate"; "deactivate"; "select"; "deselect" ])
  in
  Wutil.standard_creator app ~command
    ~make:(fun () -> make_class kind)
    ~data:(fun () ->
      Button_data { kind; active = false; pressed = false; flashes = 0 })
    ~subs ()

let install app =
  creator app Label "label";
  creator app Push "button";
  creator app Check "checkbutton";
  creator app Radio "radiobutton"
