open Xsim

let failf = Tcl.Interp.failf

type state = { mutable text : string; mutable cursor : int; mutable focused : bool }

type Tk.Core.wdata += Entry_data of state

let data w =
  match w.Tk.Core.data with
  | Entry_data s -> s
  | _ -> failf "%s is not an entry" w.Tk.Core.path

let contents w = (data w).text
let cursor_position w = (data w).cursor

let specs =
  Tk.Core.
    [
      spec ~switch:"-font" ~db:"font" ~cls:"Font" ~default:"fixed" Ot_font;
      spec ~switch:"-foreground" ~db:"foreground" ~cls:"Foreground"
        ~default:"black" Ot_color;
      spec ~switch:"-fg" ~db:"foreground" ~cls:"Foreground" ~default:"black"
        Ot_color;
      spec ~switch:"-background" ~db:"background" ~cls:"Background"
        ~default:"white" Ot_color;
      spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"white"
        Ot_color;
      spec ~switch:"-width" ~db:"width" ~cls:"Width" ~default:"20" Ot_int;
      spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
        ~default:"2" Ot_pixels;
      spec ~switch:"-relief" ~db:"relief" ~cls:"Relief" ~default:"sunken"
        Ot_relief;
    ]

let clamp_cursor s =
  s.cursor <- max 0 (min s.cursor (String.length s.text))

let insert_at w i text =
  let s = data w in
  let i = max 0 (min i (String.length s.text)) in
  s.text <-
    String.sub s.text 0 i ^ text
    ^ String.sub s.text i (String.length s.text - i);
  if s.cursor >= i then s.cursor <- s.cursor + String.length text;
  clamp_cursor s;
  Tk.Core.schedule_redraw w

let delete_range w first last =
  let s = data w in
  let n = String.length s.text in
  let first = max 0 (min first n) in
  let last = max first (min last n) in
  s.text <- String.sub s.text 0 first ^ String.sub s.text last (n - last);
  if s.cursor > first then s.cursor <- max first (s.cursor - (last - first));
  clamp_cursor s;
  Tk.Core.schedule_redraw w

let handle_key w keysym =
  let s = data w in
  match keysym with
  | "BackSpace" -> if s.cursor > 0 then delete_range w (s.cursor - 1) s.cursor
  | "Delete" ->
    if s.cursor < String.length s.text then
      delete_range w s.cursor (s.cursor + 1)
  | "Left" ->
    s.cursor <- max 0 (s.cursor - 1);
    Tk.Core.schedule_redraw w
  | "Right" ->
    s.cursor <- min (String.length s.text) (s.cursor + 1);
    Tk.Core.schedule_redraw w
  | "Home" ->
    s.cursor <- 0;
    Tk.Core.schedule_redraw w
  | "End" ->
    s.cursor <- String.length s.text;
    Tk.Core.schedule_redraw w
  | "Return" | "Tab" | "Escape" -> ()
  | _ -> (
    match Event.char_of_keysym keysym with
    | Some c when c >= ' ' && c < '\127' ->
      insert_at w s.cursor (String.make 1 c)
    | Some _ | None -> ())

let handle_event w (event : Event.t) =
  let s = data w in
  match event with
  | Event.Key_press { keysym; key_state; _ } ->
    (* Control-modified keys are left entirely to Tcl bindings, so users
       can add things like the paper's Control-w word-backspace. *)
    if not key_state.Event.control then handle_key w keysym
  | Event.Button_press { button = 1; bx; _ } ->
    let font = Wutil.widget_font w in
    let bw = Tk.Core.get_pixels w "-borderwidth" in
    s.cursor <-
      max 0
        (min (String.length s.text) ((bx - bw - 2) / font.Font.char_width));
    Tk.Core.set_focus w.Tk.Core.app (Some w.Tk.Core.path);
    Tk.Core.schedule_redraw w
  | Event.Focus_in ->
    s.focused <- true;
    Tk.Core.schedule_redraw w
  | Event.Focus_out ->
    s.focused <- false;
    Tk.Core.schedule_redraw w
  | _ -> ()

let display w =
  let s = data w in
  let app = w.Tk.Core.app in
  let font = Wutil.widget_font w in
  Wutil.draw_background w ();
  Wutil.draw_relief_border w ();
  let gc = Tk.Core.widget_gc w ~fg:"-foreground" ~font:"-font" () in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let x0 = bw + 2 in
  let baseline = ((w.Tk.Core.height - Font.line_height font) / 2) + font.Font.ascent in
  Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc ~x:x0 ~y:baseline s.text;
  if s.focused then
    (* Caret: a vertical line just after the cursor position. *)
    Server.draw_line app.Tk.Core.conn w.Tk.Core.win gc
      ~x1:(x0 + (s.cursor * font.Font.char_width))
      ~y1:(baseline - font.Font.ascent)
      ~x2:(x0 + (s.cursor * font.Font.char_width))
      ~y2:(baseline + font.Font.descent)

let compute_geometry w =
  let font = Wutil.widget_font w in
  let chars = Tk.Core.get_int w "-width" in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  Tk.Core.request_size w
    ~width:((chars * font.Font.char_width) + (2 * bw) + 4)
    ~height:(Font.line_height font + (2 * bw) + 4)

let parse_index w spec =
  let s = data w in
  match spec with
  | "end" -> String.length s.text
  | "cursor" -> s.cursor
  | _ -> (
    match int_of_string_opt spec with
    | Some i -> i
    | None -> failf "bad entry index \"%s\"" spec)

let subcommands w words =
  let s = data w in
  let ok = Tcl.Interp.ok in
  match words with
  | [ _; "get" ] -> ok s.text
  | [ _; "insert"; index; text ] ->
    insert_at w (parse_index w index) text;
    ok ""
  | [ _; "delete"; first ] ->
    let i = parse_index w first in
    delete_range w i (i + 1);
    ok ""
  | [ _; "delete"; first; last ] ->
    delete_range w (parse_index w first) (parse_index w last);
    ok ""
  | [ _; "icursor"; index ] ->
    s.cursor <- parse_index w index;
    clamp_cursor s;
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "index"; index ] -> ok (string_of_int (parse_index w index))
  | _ :: sub :: _ -> failf "bad option \"%s\" for %s" sub w.Tk.Core.path
  | _ -> Tcl.Interp.wrong_args (w.Tk.Core.path ^ " option ?arg ...?")

let make_class () =
  let cls = Tk.Core.make_class ~name:"Entry" ~specs () in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      compute_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- display;
  cls.Tk.Core.handle_event <- handle_event;
  cls.Tk.Core.subcommands <- subcommands;
  cls

let install app =
  Wutil.standard_creator app ~command:"entry" ~make:make_class
    ~data:(fun () -> Entry_data { text = ""; cursor = 0; focused = false })
    ~subs:
      Tcl.Interp.
        [
          subsig "get" 0 ~max:0;
          subsig "insert" 2 ~max:2;
          subsig "delete" 1 ~max:2;
          subsig "icursor" 1 ~max:1;
          subsig "index" 1 ~max:1;
        ]
    ()
