open Xsim

let failf = Tcl.Interp.failf

type entry =
  | Command of { mutable label : string; mutable command : string }
  | Separator

type state = {
  mutable entries : entry list;
  mutable active : int option;
  mutable posted : bool;
}

type Tk.Core.wdata += Menu_data of state

let data w =
  match w.Tk.Core.data with
  | Menu_data s -> s
  | _ -> failf "%s is not a menu" w.Tk.Core.path

let entry_labels w =
  List.map
    (function Command { label; _ } -> label | Separator -> "-")
    (data w).entries

let specs =
  Tk.Core.
    [
      spec ~switch:"-font" ~db:"font" ~cls:"Font" ~default:"fixed" Ot_font;
      spec ~switch:"-foreground" ~db:"foreground" ~cls:"Foreground"
        ~default:"black" Ot_color;
      spec ~switch:"-fg" ~db:"foreground" ~cls:"Foreground" ~default:"black"
        Ot_color;
      spec ~switch:"-background" ~db:"background" ~cls:"Background"
        ~default:"#eeeeee" Ot_color;
      spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"#eeeeee"
        Ot_color;
      spec ~switch:"-activebackground" ~db:"activeBackground"
        ~cls:"Foreground" ~default:"gray75" Ot_color;
      spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
        ~default:"2" Ot_pixels;
      spec ~switch:"-relief" ~db:"relief" ~cls:"Relief" ~default:"raised"
        Ot_relief;
    ]

let entry_height w =
  let font = Wutil.widget_font w in
  Font.line_height font + 4

let compute_geometry w =
  let s = data w in
  let font = Wutil.widget_font w in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let width =
    List.fold_left
      (fun acc e ->
        match e with
        | Command { label; _ } -> max acc (Font.text_width font label)
        | Separator -> acc)
      (8 * font.Font.char_width)
      s.entries
  in
  let height = max 1 (List.length s.entries) * entry_height w in
  Tk.Core.request_size w
    ~width:(width + (2 * bw) + 16)
    ~height:(height + (2 * bw))

let post w ~x ~y =
  let s = data w in
  compute_geometry w;
  Tk.Core.move_resize w ~x ~y ~width:w.Tk.Core.req_width
    ~height:w.Tk.Core.req_height;
  Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
      Server.raise_window w.Tk.Core.app.Tk.Core.conn w.Tk.Core.win);
  Tk.Core.map_widget w;
  s.posted <- true

let unpost w =
  let s = data w in
  s.posted <- false;
  s.active <- None;
  Tk.Core.unmap_widget w

let entry_at w ~y =
  let s = data w in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let i = (y - bw) / entry_height w in
  if i >= 0 && i < List.length s.entries then Some i else None

let invoke_entry w i =
  let s = data w in
  if i < 0 then ()
  else
    match List.nth_opt s.entries i with
    | Some (Command { command; _ }) ->
      unpost w;
      Wutil.invoke_widget_script w command
    | Some Separator | None -> ()

let handle_event w (event : Event.t) =
  let s = data w in
  match event with
  | Event.Motion { my; _ } ->
    let active = entry_at w ~y:my in
    if active <> s.active then begin
      s.active <- active;
      Tk.Core.schedule_redraw w
    end
  | Event.Button_release { button = 1; by; _ } -> (
    match entry_at w ~y:by with
    | Some i -> invoke_entry w i
    | None -> unpost w)
  | Event.Leave _ ->
    s.active <- None;
    Tk.Core.schedule_redraw w
  | _ -> ()

let display w =
  let s = data w in
  let app = w.Tk.Core.app in
  let font = Wutil.widget_font w in
  Wutil.draw_background w ();
  Wutil.draw_relief_border w ();
  let gc = Tk.Core.widget_gc w ~fg:"-foreground" ~font:"-font" () in
  let active_gc = Tk.Core.widget_gc w ~fg:"-activebackground" () in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let eh = entry_height w in
  List.iteri
    (fun i e ->
      let y = bw + (i * eh) in
      if s.active = Some i then
        Server.fill_rect app.Tk.Core.conn w.Tk.Core.win active_gc
          (Geom.rect ~x:bw ~y ~width:(w.Tk.Core.width - (2 * bw)) ~height:eh);
      match e with
      | Command { label; _ } ->
        Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc ~x:(bw + 8)
          ~y:(y + 2 + font.Font.ascent) label
      | Separator ->
        Server.draw_line app.Tk.Core.conn w.Tk.Core.win gc ~x1:bw
          ~y1:(y + (eh / 2))
          ~x2:(w.Tk.Core.width - bw)
          ~y2:(y + (eh / 2)))
    s.entries

let parse_entry_index w spec =
  let s = data w in
  let n = List.length s.entries in
  match spec with
  | "last" -> n - 1
  | "active" -> ( match s.active with Some i -> i | None -> -1)
  | _ -> (
    match int_of_string_opt spec with
    | Some i -> i
    | None -> (
      (* Match by label. *)
      let found = ref (-1) in
      List.iteri
        (fun i e ->
          match e with
          | Command { label; _ } when label = spec && !found < 0 -> found := i
          | _ -> ())
        s.entries;
      if !found >= 0 then !found
      else failf "bad menu entry index \"%s\"" spec))

let rec parse_entry_options w label command = function
  | [] -> (label, command)
  | "-label" :: v :: rest -> parse_entry_options w v command rest
  | "-command" :: v :: rest -> parse_entry_options w label v rest
  | bad :: _ -> failf "unknown menu entry option \"%s\"" bad

let subcommands w words =
  let s = data w in
  let ok = Tcl.Interp.ok in
  match words with
  | _ :: "add" :: "command" :: options ->
    let label, command = parse_entry_options w "" "" options in
    s.entries <- s.entries @ [ Command { label; command } ];
    compute_geometry w;
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "add"; "separator" ] ->
    s.entries <- s.entries @ [ Separator ];
    compute_geometry w;
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "delete"; index ] ->
    let i = parse_entry_index w index in
    s.entries <- List.filteri (fun j _ -> j <> i) s.entries;
    compute_geometry w;
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "invoke"; index ] ->
    invoke_entry w (parse_entry_index w index);
    ok ""
  | [ _; "post"; x; y ] -> (
    match (int_of_string_opt x, int_of_string_opt y) with
    | Some x, Some y ->
      post w ~x ~y;
      ok ""
    | _ -> failf "bad coordinates for %s post" w.Tk.Core.path)
  | [ _; "unpost" ] ->
    unpost w;
    ok ""
  | [ _; "size" ] -> ok (string_of_int (List.length s.entries))
  | [ _; "entrylabel"; index ] -> (
    let i = parse_entry_index w index in
    if i < 0 then failf "bad menu entry index \"%s\"" index
    else
      match List.nth_opt s.entries i with
      | Some (Command { label; _ }) -> ok label
      | Some Separator -> ok "-"
      | None -> failf "bad menu entry index \"%s\"" index)
  | _ :: sub :: _ -> failf "bad option \"%s\" for %s" sub w.Tk.Core.path
  | _ -> Tcl.Interp.wrong_args (w.Tk.Core.path ^ " option ?arg ...?")

let make_menu_class () =
  let cls = Tk.Core.make_class ~name:"Menu" ~specs () in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      compute_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- display;
  cls.Tk.Core.handle_event <- handle_event;
  cls.Tk.Core.subcommands <- subcommands;
  cls

(* ------------------------------------------------------------------ *)
(* Menubuttons: a button that posts its -menu below itself. *)

let menubutton_specs =
  specs
  @ Tk.Core.
      [
        spec ~switch:"-text" ~db:"text" ~cls:"Text" ~default:"" Ot_string;
        spec ~switch:"-menu" ~db:"menu" ~cls:"Menu" ~default:"" Ot_string;
      ]

let menubutton_geometry w =
  let font = Wutil.widget_font w in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let text = Tk.Core.get_string w "-text" in
  Tk.Core.request_size w
    ~width:(Font.text_width font text + (2 * bw) + 8)
    ~height:(Font.line_height font + (2 * bw) + 6)

let menubutton_post w =
  let app = w.Tk.Core.app in
  match Tk.Core.lookup app (Tk.Core.get_string w "-menu") with
  | Some menu when not menu.Tk.Core.destroyed -> (
    match menu.Tk.Core.data with
    | Menu_data s ->
      if s.posted then unpost menu
      else begin
        (* Post just below the button, in main-window coordinates. *)
        let rec root_xy widget (x, y) =
          match Tk.Path.parent widget.Tk.Core.path with
          | None -> (x, y)
          | Some p -> (
            match Tk.Core.lookup app p with
            | Some parent ->
              root_xy parent (x + widget.Tk.Core.x, y + widget.Tk.Core.y)
            | None -> (x, y))
        in
        let x, y = root_xy w (0, 0) in
        post menu ~x ~y:(y + w.Tk.Core.height)
      end
    | _ -> ())
  | Some _ | None -> ()

let menubutton_display w =
  Wutil.draw_background w ();
  Wutil.draw_relief_border w ();
  Wutil.draw_anchored_text w ~text:(Tk.Core.get_string w "-text")
    ~anchor:Tk.Core.Center ()

let make_menubutton_class () =
  let cls = Tk.Core.make_class ~name:"Menubutton" ~specs:menubutton_specs () in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      menubutton_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- menubutton_display;
  cls.Tk.Core.handle_event <-
    (fun w event ->
      match event with
      | Event.Button_press { button = 1; _ } -> menubutton_post w
      | _ -> ());
  cls

let install app =
  Wutil.standard_creator app ~command:"menu" ~make:make_menu_class
    ~subs:
      Tcl.Interp.
        [
          subsig "add" 1;
          subsig "delete" 1 ~max:1;
          subsig "invoke" 1 ~max:1;
          subsig "post" 2 ~max:2;
          subsig "unpost" 0 ~max:0;
          subsig "size" 0 ~max:0;
          subsig "entrylabel" 1 ~max:1;
        ]
    ~data:(fun () -> Menu_data { entries = []; active = None; posted = false })
    ~post_create:(fun w ->
      (* Menus start unmapped and never participate in packing. *)
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_override_redirect w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win true))
    ();
  Wutil.standard_creator app ~command:"menubutton" ~make:make_menubutton_class
    ()
