open Xsim

let failf = Tcl.Interp.failf

type state = {
  mutable elements : string array;
  mutable top : int;
  mutable sel : (int * int) option; (* inclusive range, low <= high *)
  mutable anchor : int; (* where a drag-selection started *)
}

type Tk.Core.wdata += Listbox_data of state

let data w =
  match w.Tk.Core.data with
  | Listbox_data s -> s
  | _ -> failf "%s is not a listbox" w.Tk.Core.path

let items w = Array.to_list (data w).elements
let selection_range w = (data w).sel
let top_index w = (data w).top

let specs =
  Tk.Core.
    [
      spec ~switch:"-geometry" ~db:"geometry" ~cls:"Geometry" ~default:"15x10"
        Ot_string;
      spec ~switch:"-font" ~db:"font" ~cls:"Font" ~default:"fixed" Ot_font;
      spec ~switch:"-foreground" ~db:"foreground" ~cls:"Foreground"
        ~default:"black" Ot_color;
      spec ~switch:"-fg" ~db:"foreground" ~cls:"Foreground" ~default:"black"
        Ot_color;
      spec ~switch:"-background" ~db:"background" ~cls:"Background"
        ~default:"white" Ot_color;
      spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"white"
        Ot_color;
      spec ~switch:"-selectbackground" ~db:"selectBackground" ~cls:"Foreground"
        ~default:"gray50" Ot_color;
      spec ~switch:"-scroll" ~db:"scrollCommand" ~cls:"ScrollCommand"
        ~default:"" Ot_string;
      spec ~switch:"-scrollcommand" ~db:"scrollCommand" ~cls:"ScrollCommand"
        ~default:"" Ot_string;
      spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
        ~default:"2" Ot_pixels;
      spec ~switch:"-relief" ~db:"relief" ~cls:"Relief" ~default:"sunken"
        Ot_relief;
    ]

(* Columns and rows from the -geometry option ("20x10"). *)
let grid_size w =
  match Tk.Core.parse_geometry_spec (Tk.Core.get_string w "-geometry") with
  | Some (cols, rows) -> (cols, rows)
  | None -> (15, 10)

let visible_rows w =
  let font = Wutil.widget_font w in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  max 1 ((w.Tk.Core.height - (2 * bw)) / Font.line_height font)

(* Notify the attached scrollbar (old-Tk protocol: total window first
   last). *)
let update_scroll w =
  let s = data w in
  let command =
    match Tk.Core.get_string w "-scroll" with
    | "" -> Tk.Core.get_string w "-scrollcommand"
    | c -> c
  in
  if command <> "" then begin
    let total = Array.length s.elements in
    let window = visible_rows w in
    let first = s.top in
    let last = min (total - 1) (s.top + window - 1) in
    Wutil.invoke_widget_script w
      (Printf.sprintf "%s %d %d %d %d" command total window first last)
  end

let clamp_top w top =
  let s = data w in
  let total = Array.length s.elements in
  max 0 (min top (total - 1))

let set_view w top =
  let s = data w in
  let top = clamp_top w top in
  if top <> s.top then begin
    s.top <- top;
    Tk.Core.schedule_redraw w
  end;
  update_scroll w

(* Claim the X selection: other widgets and applications can fetch the
   selected lines with [selection get]. *)
let claim_selection w =
  let provider () =
    let s = data w in
    match s.sel with
    | None -> ""
    | Some (lo, hi) ->
      String.concat "\n"
        (Array.to_list (Array.sub s.elements lo (hi - lo + 1)))
  in
  Tk.Selection.own w ~provider

let select_range w lo hi =
  let s = data w in
  let total = Array.length s.elements in
  if total > 0 then begin
    let lo = max 0 (min lo (total - 1)) in
    let hi = max 0 (min hi (total - 1)) in
    s.sel <- Some (min lo hi, max lo hi);
    claim_selection w;
    Tk.Core.schedule_redraw w
  end

let index_at w ~y =
  let s = data w in
  let font = Wutil.widget_font w in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let row = (y - bw) / Font.line_height font in
  let total = Array.length s.elements in
  if total = 0 then None
  else Some (max 0 (min (s.top + row) (total - 1)))

let handle_event w (event : Event.t) =
  let s = data w in
  match event with
  | Event.Button_press { button = 1; by; _ } -> (
    match index_at w ~y:by with
    | Some i ->
      s.anchor <- i;
      select_range w i i
    | None -> ())
  | Event.Motion { my; motion_state; _ } when motion_state.Event.button1 -> (
    match index_at w ~y:my with
    | Some i -> select_range w s.anchor i
    | None -> ())
  | Event.Selection_clear _ ->
    s.sel <- None;
    Tk.Core.schedule_redraw w
  | _ -> ()

let display w =
  let s = data w in
  let app = w.Tk.Core.app in
  let font = Wutil.widget_font w in
  Wutil.draw_background w ();
  Wutil.draw_relief_border w ();
  let gc = Tk.Core.widget_gc w ~fg:"-foreground" ~font:"-font" () in
  let sel_gc = Tk.Core.widget_gc w ~fg:"-selectbackground" () in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let rows = visible_rows w in
  let lh = Font.line_height font in
  for row = 0 to rows - 1 do
    let i = s.top + row in
    if i < Array.length s.elements then begin
      let y = bw + (row * lh) in
      let is_selected =
        match s.sel with Some (lo, hi) -> i >= lo && i <= hi | None -> false
      in
      if is_selected then
        Server.fill_rect app.Tk.Core.conn w.Tk.Core.win sel_gc
          (Geom.rect ~x:bw ~y ~width:(w.Tk.Core.width - (2 * bw)) ~height:lh);
      Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc ~x:(bw + 2)
        ~y:(y + font.Font.ascent) s.elements.(i)
    end
  done

let compute_geometry w =
  let font = Wutil.widget_font w in
  let cols, rows = grid_size w in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  Tk.Core.request_size w
    ~width:((cols * font.Font.char_width) + (2 * bw) + 4)
    ~height:((rows * Font.line_height font) + (2 * bw))

let parse_index w spec =
  let s = data w in
  let total = Array.length s.elements in
  match spec with
  | "end" -> total
  | _ -> (
    match int_of_string_opt spec with
    | Some i -> i
    | None -> failf "bad listbox index \"%s\"" spec)

let subcommands w words =
  let s = data w in
  let ok = Tcl.Interp.ok in
  match words with
  | _ :: "insert" :: index :: values ->
    let i = max 0 (min (parse_index w index) (Array.length s.elements)) in
    let before = Array.sub s.elements 0 i in
    let after = Array.sub s.elements i (Array.length s.elements - i) in
    s.elements <- Array.concat [ before; Array.of_list values; after ];
    (* Adjust the selection for the shift. *)
    (match s.sel with
    | Some (lo, hi) when i <= lo ->
      let n = List.length values in
      s.sel <- Some (lo + n, hi + n)
    | _ -> ());
    Tk.Core.schedule_redraw w;
    update_scroll w;
    ok ""
  | [ _; "delete"; first ] | [ _; "delete"; first; _ ] ->
    let last =
      match words with
      | [ _; _; _; last ] -> min (parse_index w last) (Array.length s.elements - 1)
      | _ -> min (parse_index w first) (Array.length s.elements - 1)
    in
    let first = max 0 (parse_index w first) in
    if first <= last && Array.length s.elements > 0 then begin
      let before = Array.sub s.elements 0 first in
      let after =
        Array.sub s.elements (last + 1) (Array.length s.elements - last - 1)
      in
      s.elements <- Array.append before after;
      s.sel <- None;
      s.top <- clamp_top w s.top;
      Tk.Core.schedule_redraw w;
      update_scroll w
    end;
    ok ""
  | [ _; "get"; index ] ->
    let i = parse_index w index in
    let i = if index = "end" then i - 1 else i in
    if i < 0 || i >= Array.length s.elements then
      failf "listbox index \"%s\" out of range" index
    else ok s.elements.(i)
  | [ _; "size" ] -> ok (string_of_int (Array.length s.elements))
  | [ _; ("view" | "yview") ] -> ok (string_of_int s.top)
  | [ _; ("view" | "yview"); index ] ->
    set_view w (parse_index w index);
    ok ""
  | [ _; "curselection" ] ->
    (match s.sel with
    | None -> ok ""
    | Some (lo, hi) ->
      ok
        (Tcl.Tcl_list.format
           (List.init (hi - lo + 1) (fun k -> string_of_int (lo + k)))))
  | [ _; "select"; "from"; index ] ->
    let i = parse_index w index in
    s.anchor <- i;
    select_range w i i;
    ok ""
  | [ _; "select"; "to"; index ] ->
    select_range w s.anchor (parse_index w index);
    ok ""
  | [ _; "select"; "clear" ] ->
    s.sel <- None;
    Tk.Core.schedule_redraw w;
    ok ""
  | _ :: sub :: _ -> failf "bad option \"%s\" for %s" sub w.Tk.Core.path
  | _ -> Tcl.Interp.wrong_args (w.Tk.Core.path ^ " option ?arg ...?")

let make_class () =
  let cls = Tk.Core.make_class ~name:"Listbox" ~specs () in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      compute_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- display;
  cls.Tk.Core.handle_event <- handle_event;
  cls.Tk.Core.subcommands <- subcommands;
  cls

let install app =
  Wutil.standard_creator app ~command:"listbox" ~make:make_class
    ~data:(fun () ->
      Listbox_data { elements = [||]; top = 0; sel = None; anchor = 0 })
    ~post_create:(fun w -> update_scroll w)
    ~subs:
      Tcl.Interp.
        [
          subsig "insert" 1;
          subsig "delete" 1 ~max:2;
          subsig "get" 1 ~max:1;
          subsig "size" 0 ~max:0;
          subsig "view" 0 ~max:1;
          subsig "yview" 0 ~max:1;
          subsig "curselection" 0 ~max:0;
          subsig "select" 1 ~max:2;
        ]
    ()
