(* The structured-graphics canvas (paper §5), built to hold 100k items
   with flat per-edit cost:

   - items live in a dense growable array with an id→slot hashtable, so
     every id lookup is O(1) (no list walk, no per-item re-parse);
   - each item caches its bounding box, and a loose uniform grid over the
     bboxes answers find overlapping/enclosed/closest and the repaint
     exposure query in O(candidates) instead of O(items);
   - tags are doubly indexed (id→tags, tag→id-set), so bulk verbs
     (move/delete/itemconfigure/... <tag>) touch only matching items;
   - display order is a per-item monotonic z-serial, which doubles as the
     item's key in the window's keyed op store: raise/lower hand out fresh
     serials in O(moved), and re-emitting one item's ops replaces exactly
     its old drawing (Server.clear_keyed + redraw) without touching
     anything else;
   - edits mark items dirty and accumulate damage (Tk.Core.schedule_damage);
     the idle-time partial repaint re-emits only dirty items inside the
     damage clip, found through the index. Because the rasterizer paints
     keys in ascending order, the retained op store after a partial repaint
     is byte-identical to what a full redraw would leave.

   The [tk.canvas.*] counters in xstat expose the index hit rates and the
   considered/drawn split; `wish -no-canvas-index` (Canvas.set_index_enabled)
   ablates the grid back to linear scans for the bench. *)

open Xsim

let failf = Tcl.Interp.failf

type item_kind = Line | Rectangle | Text_item

type item = {
  iid : int;
  kind : item_kind;
  mutable coords : int array; (* x1 y1 x2 y2 ... *)
  mutable fill : string;
  mutable outline : string;
  mutable text : string;
  mutable tags : string list; (* in addition order *)
  mutable zserial : int; (* display order: ascending = towards the top *)
  mutable bbox : Geom.rect; (* cached, derived from coords/text/font *)
  mutable dirty : bool; (* retained ops stale; re-emit on next repaint *)
}

(* The loose uniform grid: cell -> ids of items whose bbox overlaps the
   cell. Items spanning more than [grid_max_cells] cells go to the [big]
   overflow set instead (scanned on every query), so a screen-sized
   backdrop doesn't occupy thousands of cells. *)
let grid_cell = 64

let grid_max_cells = 64

type state = {
  mutable arr : item option array; (* dense: slots 0..len-1 are live *)
  mutable len : int;
  index_of_id : (int, int) Hashtbl.t; (* id -> slot *)
  tag_index : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  grid : (int * int, int list ref) Hashtbl.t;
  big : (int, unit) Hashtbl.t;
  mutable next_id : int;
  mutable next_top : int; (* serial for the next item placed on top *)
  mutable next_bottom : int; (* serial for the next item sent to bottom *)
  mutable dead_keys : int list; (* op-store keys to clear at next repaint *)
  use_index : bool; (* captured at creation from the ablation switch *)
}

(* Ablation switch for `wish -no-canvas-index` / the bench: freshly created
   canvases fall back to linear scans for every spatial query. *)
let index_enabled = ref true

let set_index_enabled b = index_enabled := b

let new_state () =
  {
    arr = Array.make 64 None;
    len = 0;
    index_of_id = Hashtbl.create 64;
    tag_index = Hashtbl.create 16;
    grid = Hashtbl.create 64;
    big = Hashtbl.create 8;
    next_id = 1;
    next_top = 1;
    next_bottom = 0;
    dead_keys = [];
    use_index = !index_enabled;
  }

type Tk.Core.wdata += Canvas_data of state

let data w =
  match w.Tk.Core.data with
  | Canvas_data s -> s
  | _ -> failf "%s is not a canvas" w.Tk.Core.path

let item_count w = (data w).len

let metrics w = w.Tk.Core.app.Tk.Core.metrics

let get s slot =
  match s.arr.(slot) with
  | Some it -> it
  | None -> failf "canvas: corrupt item store"

let live_items s =
  let rec go acc i = if i < 0 then acc else go (get s i :: acc) (i - 1) in
  go [] (s.len - 1)

(* ------------------------------------------------------------------ *)
(* Parsing helpers *)

let parse_int spec =
  match int_of_string_opt spec with
  | Some i -> i
  | None -> failf "expected integer but got \"%s\"" spec

let parse_float spec =
  match float_of_string_opt spec with
  | Some f -> f
  | None -> failf "expected floating-point number but got \"%s\"" spec

(* ------------------------------------------------------------------ *)
(* Bounding boxes *)

let item_bbox w it =
  match it.kind with
  | Line | Rectangle ->
    let x1 = it.coords.(0) and y1 = it.coords.(1) in
    let x2 = it.coords.(2) and y2 = it.coords.(3) in
    Geom.rect ~x:(min x1 x2) ~y:(min y1 y2)
      ~width:(abs (x2 - x1) + 1)
      ~height:(abs (y2 - y1) + 1)
  | Text_item ->
    (* [coords] is the baseline origin; cover the glyph box. *)
    let f = Wutil.widget_font w in
    let width = max 1 (Font.text_width f it.text) in
    Geom.rect ~x:it.coords.(0)
      ~y:(it.coords.(1) - f.Font.ascent)
      ~width
      ~height:(f.Font.ascent + f.Font.descent)

(* Damage is padded by one raster cell on every side, so cell-quantized
   rendering (text rows, line endpoints) can never out-paint the clip. *)
let damage_pad r = Geom.inflate r ~dx:Raster.scale_x ~dy:Raster.scale_y

(* ------------------------------------------------------------------ *)
(* Spatial index: loose uniform grid over cached bboxes *)

let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)

let cell_range r =
  ( fdiv r.Geom.rx grid_cell,
    fdiv r.Geom.ry grid_cell,
    fdiv (r.Geom.rx + r.Geom.rwidth - 1) grid_cell,
    fdiv (r.Geom.ry + r.Geom.rheight - 1) grid_cell )

let grid_insert s it =
  if s.use_index then begin
    let cx0, cy0, cx1, cy1 = cell_range it.bbox in
    if (cx1 - cx0 + 1) * (cy1 - cy0 + 1) > grid_max_cells then
      Hashtbl.replace s.big it.iid ()
    else
      for cx = cx0 to cx1 do
        for cy = cy0 to cy1 do
          match Hashtbl.find_opt s.grid (cx, cy) with
          | Some ids -> ids := it.iid :: !ids
          | None -> Hashtbl.replace s.grid (cx, cy) (ref [ it.iid ])
        done
      done
  end

let grid_remove s it =
  if s.use_index then begin
    if Hashtbl.mem s.big it.iid then Hashtbl.remove s.big it.iid
    else begin
      let cx0, cy0, cx1, cy1 = cell_range it.bbox in
      for cx = cx0 to cx1 do
        for cy = cy0 to cy1 do
          match Hashtbl.find_opt s.grid (cx, cy) with
          | Some ids ->
            ids := List.filter (fun id -> id <> it.iid) !ids;
            if !ids = [] then Hashtbl.remove s.grid (cx, cy)
          | None -> ()
        done
      done
    end
  end

(* Items whose bbox intersects [r], via the grid (or a linear scan when the
   index is ablated). Unsorted. *)
let query_rect w s r =
  let m = metrics w in
  if not s.use_index then begin
    m.Tk.Metrics.canvas_linear_scans <- m.Tk.Metrics.canvas_linear_scans + 1;
    List.filter (fun it -> Geom.intersect it.bbox r <> None) (live_items s)
  end
  else begin
    m.Tk.Metrics.canvas_index_queries <- m.Tk.Metrics.canvas_index_queries + 1;
    let seen = Hashtbl.create 32 in
    let out = ref [] in
    let consider id =
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.replace seen id ();
        m.Tk.Metrics.canvas_index_hits <- m.Tk.Metrics.canvas_index_hits + 1;
        match Hashtbl.find_opt s.index_of_id id with
        | Some slot ->
          let it = get s slot in
          if Geom.intersect it.bbox r <> None then out := it :: !out
        | None -> ()
      end
    in
    let cx0, cy0, cx1, cy1 = cell_range r in
    let range_cells = (cx1 - cx0 + 1) * (cy1 - cy0 + 1) in
    if range_cells > Hashtbl.length s.grid then
      (* Huge query (find all-scale rects): walking the occupied cells is
         cheaper than enumerating the range. *)
      Hashtbl.iter
        (fun (cx, cy) ids ->
          if cx >= cx0 && cx <= cx1 && cy >= cy0 && cy <= cy1 then
            List.iter consider !ids)
        s.grid
    else
      for cx = cx0 to cx1 do
        for cy = cy0 to cy1 do
          match Hashtbl.find_opt s.grid (cx, cy) with
          | Some ids -> List.iter consider !ids
          | None -> ()
        done
      done;
    Hashtbl.iter (fun id () -> consider id) s.big;
    !out
  end

(* L∞ distance from a point to a bbox (0 inside). *)
let linf_dist r px py =
  let dx =
    max 0 (max (r.Geom.rx - px) (px - (r.Geom.rx + r.Geom.rwidth - 1)))
  in
  let dy =
    max 0 (max (r.Geom.ry - py) (py - (r.Geom.ry + r.Geom.rheight - 1)))
  in
  max dx dy

(* Best = smallest halo-adjusted distance, topmost (highest z) among ties. *)
let closest_of candidates ~px ~py ~halo =
  List.fold_left
    (fun best it ->
      let d = max 0 (linf_dist it.bbox px py - halo) in
      match best with
      | Some (bd, bit)
        when bd < d || (bd = d && bit.zserial > it.zserial) ->
        best
      | _ -> Some (d, it))
    None candidates

let find_closest w s ~px ~py ~halo =
  if not s.use_index then
    Option.map snd (closest_of (live_items s) ~px ~py ~halo)
  else begin
    let total = s.len in
    let rec expand r =
      let square =
        Geom.rect ~x:(px - r) ~y:(py - r) ~width:(2 * r) ~height:(2 * r)
      in
      let candidates = query_rect w s square in
      let best = closest_of candidates ~px ~py ~halo in
      match best with
      (* Anything outside the square is strictly farther than [r - halo]
         (adjusted), so a best within that bound is globally best. *)
      | Some (d, it) when d < r - halo -> Some it
      | _ ->
        if List.length candidates = total then Option.map snd best
        else expand (r * 2)
    in
    if total = 0 then None else expand grid_cell
  end

(* ------------------------------------------------------------------ *)
(* Tag index *)

let tag_add s it tag =
  if not (List.mem tag it.tags) then begin
    it.tags <- it.tags @ [ tag ];
    let set =
      match Hashtbl.find_opt s.tag_index tag with
      | Some set -> set
      | None ->
        let set = Hashtbl.create 8 in
        Hashtbl.replace s.tag_index tag set;
        set
    in
    Hashtbl.replace set it.iid ()
  end

let tag_remove s it tag =
  if List.mem tag it.tags then begin
    it.tags <- List.filter (fun t -> t <> tag) it.tags;
    match Hashtbl.find_opt s.tag_index tag with
    | Some set ->
      Hashtbl.remove set it.iid;
      if Hashtbl.length set = 0 then Hashtbl.remove s.tag_index tag
    | None -> ()
  end

let set_tags s it tags =
  List.iter (fun t -> tag_remove s it t) it.tags;
  List.iter (fun t -> tag_add s it t) tags

(* ------------------------------------------------------------------ *)
(* tagOrId resolution *)

let by_display_order items =
  List.sort (fun a b -> compare a.zserial b.zserial) items

(* All items matching a tag-or-id, display order. [strict] errors on a
   numeric id that doesn't exist (the historical canvas behaviour, pinned
   by tests); a tag matching nothing is an empty result either way. *)
let resolve ?(strict = true) w s spec =
  let m = metrics w in
  if spec = "all" then by_display_order (live_items s)
  else
    match int_of_string_opt spec with
    | Some id -> (
      match Hashtbl.find_opt s.index_of_id id with
      | Some slot -> [ get s slot ]
      | None ->
        if strict then failf "item \"%s\" doesn't exist" spec else [])
    | None -> (
      m.Tk.Metrics.canvas_bulk_ops <- m.Tk.Metrics.canvas_bulk_ops + 1;
      match Hashtbl.find_opt s.tag_index spec with
      | Some set ->
        by_display_order
          (Hashtbl.fold
             (fun id () acc -> get s (Hashtbl.find s.index_of_id id) :: acc)
             set [])
      | None -> [])

let first_item w s spec =
  match resolve w s spec with
  | it :: _ -> it
  | [] -> failf "item \"%s\" doesn't exist" spec

(* Satellite fix: parse the id once, then O(1) through the hashtable
   (formerly an O(n) List.find_opt re-parsing the id per element). *)
let find_item s id_str =
  let id = parse_int id_str in
  match Hashtbl.find_opt s.index_of_id id with
  | Some slot -> get s slot
  | None -> failf "item \"%s\" doesn't exist" id_str

(* ------------------------------------------------------------------ *)
(* Item store mutation *)

let add_item s it =
  if s.len = Array.length s.arr then begin
    let bigger = Array.make (2 * Array.length s.arr) None in
    Array.blit s.arr 0 bigger 0 s.len;
    s.arr <- bigger
  end;
  s.arr.(s.len) <- Some it;
  Hashtbl.replace s.index_of_id it.iid s.len;
  s.len <- s.len + 1;
  grid_insert s it

(* Swap-remove keeps the store dense; only the moved slot's index entry
   needs updating. *)
let remove_item s it =
  (match Hashtbl.find_opt s.index_of_id it.iid with
  | None -> ()
  | Some slot ->
    let last = s.len - 1 in
    let moved = get s last in
    s.arr.(slot) <- Some moved;
    s.arr.(last) <- None;
    Hashtbl.replace s.index_of_id moved.iid slot;
    Hashtbl.remove s.index_of_id it.iid;
    s.len <- s.len - 1);
  grid_remove s it;
  set_tags s it [];
  s.dead_keys <- it.zserial :: s.dead_keys

(* ------------------------------------------------------------------ *)
(* Drawing: each item's ops live under its z-serial in the keyed store *)

(* Background and relief render below every item; z-serials stay far from
   these keys (they start near 0 and drift one per raise/lower). *)
let bg_key = min_int

let relief_key = min_int + 1

let emit_item w it =
  let app = w.Tk.Core.app in
  let conn = app.Tk.Core.conn in
  let win = w.Tk.Core.win in
  let key = it.zserial in
  let gc color = Tk.Core.widget_gc w ~fg:color ~font:"-font" () in
  match it.kind with
  | Line ->
    if it.fill <> "" then
      Server.draw_line ~key conn win (gc it.fill) ~x1:it.coords.(0)
        ~y1:it.coords.(1) ~x2:it.coords.(2) ~y2:it.coords.(3)
  | Rectangle ->
    let x1 = it.coords.(0) and y1 = it.coords.(1) in
    let x2 = it.coords.(2) and y2 = it.coords.(3) in
    let rect =
      Geom.rect ~x:(min x1 x2) ~y:(min y1 y2) ~width:(abs (x2 - x1))
        ~height:(abs (y2 - y1))
    in
    if it.fill <> "" then Server.fill_rect ~key conn win (gc it.fill) rect;
    if it.outline <> "" then
      Server.draw_rect ~key conn win (gc it.outline) rect
  | Text_item ->
    if it.fill <> "" && it.text <> "" then
      Server.draw_text ~key conn win (gc it.fill) ~x:it.coords.(0)
        ~y:it.coords.(1) it.text

let clear_dead_keys w s =
  let conn = w.Tk.Core.app.Tk.Core.conn in
  List.iter (fun k -> Server.clear_keyed conn w.Tk.Core.win k) s.dead_keys;
  s.dead_keys <- []

(* Full redraw (class display hook; the core has already cleared the
   window, which also dropped any dead keys). *)
let display w =
  let s = data w in
  let m = metrics w in
  m.Tk.Metrics.canvas_full_redraws <- m.Tk.Metrics.canvas_full_redraws + 1;
  s.dead_keys <- [];
  let gc color = Tk.Core.widget_gc w ~fg:color () in
  let app = w.Tk.Core.app in
  Server.fill_rect ~key:bg_key app.Tk.Core.conn w.Tk.Core.win
    (gc (Tk.Core.cget w "-background"))
    (Geom.rect ~x:0 ~y:0 ~width:w.Tk.Core.width ~height:w.Tk.Core.height);
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let relief = Tk.Core.get_relief w "-relief" in
  if bw > 0 && relief <> Tk.Core.Flat then
    Server.draw_relief ~key:relief_key app.Tk.Core.conn w.Tk.Core.win
      (Geom.rect ~x:0 ~y:0 ~width:w.Tk.Core.width ~height:w.Tk.Core.height)
      ~raised:(relief = Tk.Core.Raised) ~width:bw;
  for i = 0 to s.len - 1 do
    let it = get s i in
    m.Tk.Metrics.canvas_items_considered <-
      m.Tk.Metrics.canvas_items_considered + 1;
    m.Tk.Metrics.canvas_items_drawn <- m.Tk.Metrics.canvas_items_drawn + 1;
    emit_item w it;
    it.dirty <- false
  done

(* Partial repaint: only items inside the damage clip are even considered
   (via the index); only the dirty ones re-emit their ops. Every dirty
   item is inside the clip by construction — each edit adds its old∪new
   bbox to the damage the core accumulates. *)
let display_damaged w clip =
  let s = data w in
  let m = metrics w in
  m.Tk.Metrics.canvas_damage_redraws <- m.Tk.Metrics.canvas_damage_redraws + 1;
  clear_dead_keys w s;
  let conn = w.Tk.Core.app.Tk.Core.conn in
  List.iter
    (fun it ->
      m.Tk.Metrics.canvas_items_considered <-
        m.Tk.Metrics.canvas_items_considered + 1;
      if it.dirty then begin
        Server.clear_keyed conn w.Tk.Core.win it.zserial;
        emit_item w it;
        it.dirty <- false;
        m.Tk.Metrics.canvas_items_drawn <- m.Tk.Metrics.canvas_items_drawn + 1
      end)
    (query_rect w s clip)

(* ------------------------------------------------------------------ *)
(* Edit plumbing: mark dirty, damage old∪new, keep the index current *)

let damage_item w it = Tk.Core.schedule_damage w (damage_pad it.bbox)

let item_changed w s it ~old_bbox =
  let nb = item_bbox w it in
  if nb <> old_bbox then begin
    grid_remove s { it with bbox = old_bbox };
    it.bbox <- nb;
    grid_insert s it
  end;
  it.dirty <- true;
  Tk.Core.schedule_damage w (damage_pad (Geom.union old_bbox nb))

let coord_arity = function Line | Rectangle -> 4 | Text_item -> 2

let kind_name = function
  | Line -> "line"
  | Rectangle -> "rectangle"
  | Text_item -> "text"

(* ------------------------------------------------------------------ *)
(* Item options (create / itemconfigure) *)

let apply_item_option s it option value =
  match option with
  | "-fill" -> it.fill <- value
  | "-outline" -> it.outline <- value
  | "-text" -> it.text <- value
  | "-tags" -> (
    match Tcl.Tcl_list.parse value with
    | Ok tags -> set_tags s it tags
    | Error msg -> failf "bad tag list \"%s\": %s" value msg)
  | bad -> failf "unknown canvas item option \"%s\"" bad

let item_option_value it = function
  | "-fill" -> it.fill
  | "-outline" -> it.outline
  | "-text" -> it.text
  | "-tags" -> Tcl.Tcl_list.format it.tags
  | bad -> failf "unknown canvas item option \"%s\"" bad

let item_option_names = [ "-fill"; "-outline"; "-text"; "-tags" ]

let rec apply_item_options s it = function
  | [] -> ()
  | [ option ] -> failf "value for \"%s\" missing" option
  | option :: value :: rest ->
    apply_item_option s it option value;
    apply_item_options s it rest

(* ------------------------------------------------------------------ *)
(* Create *)

let split_coords_options args =
  let rec go coords = function
    | v :: rest
      when v <> ""
           && (v.[0] <> '-'
              || (String.length v > 1 && Tcl.Chars.is_digit v.[1])) ->
      go (parse_int v :: coords) rest
    | rest -> (Array.of_list (List.rev coords), rest)
  in
  go [] args

let create_item w kind args =
  let s = data w in
  let coords, options = split_coords_options args in
  let expected = coord_arity kind in
  if Array.length coords <> expected then
    failf "wrong # coordinates: expected %d, got %d" expected
      (Array.length coords);
  let zserial = s.next_top in
  s.next_top <- s.next_top + 1;
  let it =
    {
      iid = s.next_id;
      kind;
      coords;
      (* Kind defaults: rectangles draw an outline only; lines and text
         draw in black. *)
      fill = (match kind with Rectangle -> "" | Line | Text_item -> "black");
      outline = (match kind with Rectangle -> "black" | _ -> "");
      text = "";
      tags = [];
      zserial;
      bbox = Geom.rect ~x:0 ~y:0 ~width:1 ~height:1;
      dirty = true;
    }
  in
  s.next_id <- s.next_id + 1;
  apply_item_options s it options;
  it.bbox <- item_bbox w it;
  add_item s it;
  damage_item w it;
  it.iid

(* ------------------------------------------------------------------ *)
(* Search specs (find / addtag) *)

let rect_of_corners x1 y1 x2 y2 =
  (* Inclusive area between two corners. *)
  Geom.rect ~x:(min x1 x2) ~y:(min y1 y2)
    ~width:(abs (x2 - x1) + 1)
    ~height:(abs (y2 - y1) + 1)

let enclosed_in outer r =
  r.Geom.rx >= outer.Geom.rx
  && r.Geom.ry >= outer.Geom.ry
  && r.Geom.rx + r.Geom.rwidth <= outer.Geom.rx + outer.Geom.rwidth
  && r.Geom.ry + r.Geom.rheight <= outer.Geom.ry + outer.Geom.rheight

let search w s = function
  | [ "all" ] -> by_display_order (live_items s)
  | [ "withtag"; spec ] -> resolve ~strict:false w s spec
  | [ "overlapping"; x1; y1; x2; y2 ] ->
    let r =
      rect_of_corners (parse_int x1) (parse_int y1) (parse_int x2)
        (parse_int y2)
    in
    by_display_order (query_rect w s r)
  | [ "enclosed"; x1; y1; x2; y2 ] ->
    let r =
      rect_of_corners (parse_int x1) (parse_int y1) (parse_int x2)
        (parse_int y2)
    in
    by_display_order
      (List.filter (fun it -> enclosed_in r it.bbox) (query_rect w s r))
  | "closest" :: px :: py :: rest ->
    let halo =
      match rest with
      | [] -> 0
      | [ h ] -> max 0 (parse_int h)
      | _ -> failf "wrong # args: should be \"closest x y ?halo?\""
    in
    Option.to_list
      (find_closest w s ~px:(parse_int px) ~py:(parse_int py) ~halo)
  | spec :: _ ->
    failf
      "bad search command \"%s\": must be all, withtag, overlapping, \
       enclosed, or closest"
      spec
  | [] -> failf "wrong # args: should be \"searchCommand ?arg arg ...?\""

(* ------------------------------------------------------------------ *)
(* Widget command *)

let ids_result items =
  Tcl.Interp.ok
    (String.concat " " (List.map (fun it -> string_of_int it.iid) items))

let rec subcommands w words =
  let s = data w in
  let ok = Tcl.Interp.ok in
  match words with
  | _ :: "create" :: kind :: args ->
    let kind =
      match kind with
      | "line" -> Line
      | "rectangle" | "rect" -> Rectangle
      | "text" -> Text_item
      | k -> failf "unknown canvas item type \"%s\"" k
    in
    ok (string_of_int (create_item w kind args))
  | [ _; "delete"; "all" ] ->
    (* Bulk fast path: drop every index wholesale instead of unlinking
       100k items one at a time. *)
    Array.fill s.arr 0 s.len None;
    s.len <- 0;
    Hashtbl.reset s.index_of_id;
    Hashtbl.reset s.tag_index;
    Hashtbl.reset s.grid;
    Hashtbl.reset s.big;
    s.dead_keys <- [];
    Tk.Core.schedule_redraw w;
    ok ""
  | _ :: "delete" :: specs ->
    List.iter
      (fun spec ->
        List.iter
          (fun it ->
            remove_item s it;
            Tk.Core.schedule_damage w (damage_pad it.bbox))
          (resolve w s spec))
      specs;
    ok ""
  | [ _; "move"; spec; dx; dy ] ->
    let dx = parse_int dx and dy = parse_int dy in
    List.iter
      (fun it ->
        let old_bbox = it.bbox in
        it.coords <-
          Array.mapi
            (fun i v -> if i mod 2 = 0 then v + dx else v + dy)
            it.coords;
        item_changed w s it ~old_bbox)
      (resolve w s spec);
    ok ""
  | [ _; "scale"; spec; xo; yo; xs; ys ] ->
    let xo = parse_float xo and yo = parse_float yo in
    let xs = parse_float xs and ys = parse_float ys in
    let sc origin factor v =
      int_of_float (Float.round (origin +. ((float_of_int v -. origin) *. factor)))
    in
    List.iter
      (fun it ->
        let old_bbox = it.bbox in
        it.coords <-
          Array.mapi
            (fun i v -> if i mod 2 = 0 then sc xo xs v else sc yo ys v)
            it.coords;
        item_changed w s it ~old_bbox)
      (resolve w s spec);
    ok ""
  | [ _; "coords"; spec ] ->
    let it = find_item s spec in
    ok
      (Tcl.Tcl_list.format
         (Array.to_list (Array.map string_of_int it.coords)))
  | _ :: "coords" :: spec :: (_ :: _ as new_coords) ->
    let it = find_item s spec in
    (* Satellite fix: replacement coordinates must match the item kind's
       arity (formerly any count was accepted, silently corrupting later
       rendering). *)
    let expected = coord_arity it.kind in
    if List.length new_coords <> expected then
      failf "wrong # coordinates: expected %d, got %d" expected
        (List.length new_coords);
    let old_bbox = it.bbox in
    it.coords <- Array.of_list (List.map parse_int new_coords);
    item_changed w s it ~old_bbox;
    ok ""
  | [ _; "itemconfigure"; spec ] ->
    let it = first_item w s spec in
    ok
      (Tcl.Tcl_list.format
         (List.concat_map
            (fun o -> [ o; item_option_value it o ])
            item_option_names))
  | [ _; "itemconfigure"; spec; option ] ->
    let it = first_item w s spec in
    ok (item_option_value it option)
  | _ :: "itemconfigure" :: spec :: options ->
    List.iter
      (fun it ->
        let old_bbox = it.bbox in
        apply_item_options s it options;
        item_changed w s it ~old_bbox)
      (resolve w s spec);
    ok ""
  | _ :: "addtag" :: tag :: search_spec ->
    List.iter (fun it -> tag_add s it tag) (search w s search_spec);
    ok ""
  | [ _; "dtag"; spec ] ->
    (* One-argument form: the spec names both the items and the tag. *)
    List.iter (fun it -> tag_remove s it spec) (resolve ~strict:false w s spec);
    ok ""
  | [ _; "dtag"; spec; tag ] ->
    List.iter (fun it -> tag_remove s it tag) (resolve w s spec);
    ok ""
  | [ _; "gettags"; spec ] -> (
    match resolve ~strict:false w s spec with
    | it :: _ -> ok (Tcl.Tcl_list.format it.tags)
    | [] -> ok "")
  | _ :: "bbox" :: (_ :: _ as specs) -> (
    let items = List.concat_map (fun sp -> resolve ~strict:false w s sp) specs in
    match items with
    | [] -> ok ""
    | first :: rest ->
      let u = List.fold_left (fun acc it -> Geom.union acc it.bbox) first.bbox rest in
      ok
        (Printf.sprintf "%d %d %d %d" u.Geom.rx u.Geom.ry
           (u.Geom.rx + u.Geom.rwidth)
           (u.Geom.ry + u.Geom.rheight)))
  | _ :: "find" :: search_spec -> ids_result (search w s search_spec)
  | [ _; "raise"; spec ] ->
    (* Fresh top serials in relative order: O(moved), not O(items). *)
    List.iter
      (fun it ->
        s.dead_keys <- it.zserial :: s.dead_keys;
        it.zserial <- s.next_top;
        s.next_top <- s.next_top + 1;
        it.dirty <- true;
        damage_item w it)
      (resolve w s spec);
    ok ""
  | [ _; "lower"; spec ] ->
    List.iter
      (fun it ->
        s.dead_keys <- it.zserial :: s.dead_keys;
        it.zserial <- s.next_bottom;
        s.next_bottom <- s.next_bottom - 1;
        it.dirty <- true;
        damage_item w it)
      (List.rev (resolve w s spec));
    ok ""
  | [ _; "raise"; spec; above ] ->
    relative_restack w s spec ~ref_spec:above ~above:true;
    ok ""
  | [ _; "lower"; spec; below ] ->
    relative_restack w s spec ~ref_spec:below ~above:false;
    ok ""
  | [ _; "type"; spec ] -> ok (kind_name (find_item s spec).kind)
  | [ _; "itemcount" ] -> ok (string_of_int s.len)
  | _ :: sub :: _ -> failf "bad option \"%s\" for %s" sub w.Tk.Core.path
  | _ -> Tcl.Interp.wrong_args (w.Tk.Core.path ^ " option ?arg ...?")

(* Relative raise/lower renumbers the whole display order, which strands
   every item's retained ops under stale keys — deopt to a full redraw. *)
and relative_restack w s spec ~ref_spec ~above =
  let moved = resolve w s spec in
  if moved <> [] then begin
    let reference =
      match resolve w s ref_spec with
      | [] -> failf "item \"%s\" doesn't exist" ref_spec
      | items -> if above then List.hd (List.rev items) else List.hd items
    in
    let in_moved it = List.exists (fun m -> m == it) moved in
    if in_moved reference then
      failf "can't place items relative to themselves"
    else begin
      let rest =
        List.filter (fun it -> not (in_moved it))
          (by_display_order (live_items s))
      in
      let ordered =
        List.concat_map
          (fun it ->
            if it == reference then
              if above then it :: moved else moved @ [ it ]
            else [ it ])
          rest
      in
      List.iteri (fun i it -> it.zserial <- i + 1) ordered;
      s.next_top <- List.length ordered + 1;
      s.next_bottom <- 0;
      Tk.Core.schedule_redraw w
    end
  end

let compute_geometry w =
  Tk.Core.request_size w
    ~width:(Tk.Core.get_pixels w "-width")
    ~height:(Tk.Core.get_pixels w "-height")

let specs =
  Tk.Core.
    [
      spec ~switch:"-width" ~db:"width" ~cls:"Width" ~default:"200" Ot_pixels;
      spec ~switch:"-height" ~db:"height" ~cls:"Height" ~default:"150"
        Ot_pixels;
      spec ~switch:"-background" ~db:"background" ~cls:"Background"
        ~default:"white" Ot_color;
      spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"white"
        Ot_color;
      spec ~switch:"-font" ~db:"font" ~cls:"Font" ~default:"fixed" Ot_font;
      spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
        ~default:"2" Ot_pixels;
      spec ~switch:"-relief" ~db:"relief" ~cls:"Relief" ~default:"sunken"
        Ot_relief;
    ]

let make_class () =
  let cls = Tk.Core.make_class ~name:"Canvas" ~specs () in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      compute_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- display;
  cls.Tk.Core.display_damaged <- Some display_damaged;
  cls.Tk.Core.subcommands <- subcommands;
  cls

let install app =
  Wutil.standard_creator app ~command:"canvas" ~make:make_class
    ~subs:
      Tcl.Interp.
        [
          subsig "create" 2;
          subsig "delete" 1;
          subsig "move" 3 ~max:3;
          subsig "scale" 5 ~max:5;
          subsig "coords" 1;
          subsig "itemconfigure" 1;
          subsig "addtag" 2;
          subsig "dtag" 1 ~max:2;
          subsig "gettags" 1 ~max:1;
          subsig "find" 1 ~max:5;
          subsig "bbox" 1;
          subsig "raise" 1 ~max:2;
          subsig "lower" 1 ~max:2;
          subsig "type" 1 ~max:1;
          subsig "itemcount" 0 ~max:0;
        ]
    ~data:(fun () -> Canvas_data (new_state ()))
    ()
