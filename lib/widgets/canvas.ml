open Xsim

let failf = Tcl.Interp.failf

type item_kind = Line | Rectangle | Text_item

type item = {
  id : int;
  kind : item_kind;
  mutable coords : int array; (* x1 y1 x2 y2 ... *)
  mutable fill : string;
  mutable outline : string;
  mutable text : string;
}

type state = { mutable items : item list; mutable next_id : int }

type Tk.Core.wdata += Canvas_data of state

let data w =
  match w.Tk.Core.data with
  | Canvas_data s -> s
  | _ -> failf "%s is not a canvas" w.Tk.Core.path

let item_count w = List.length (data w).items

let specs =
  Tk.Core.
    [
      spec ~switch:"-width" ~db:"width" ~cls:"Width" ~default:"200" Ot_pixels;
      spec ~switch:"-height" ~db:"height" ~cls:"Height" ~default:"150"
        Ot_pixels;
      spec ~switch:"-background" ~db:"background" ~cls:"Background"
        ~default:"white" Ot_color;
      spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"white"
        Ot_color;
      spec ~switch:"-font" ~db:"font" ~cls:"Font" ~default:"fixed" Ot_font;
      spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
        ~default:"2" Ot_pixels;
      spec ~switch:"-relief" ~db:"relief" ~cls:"Relief" ~default:"sunken"
        Ot_relief;
    ]

let display w =
  let s = data w in
  let app = w.Tk.Core.app in
  Wutil.draw_background w ();
  Wutil.draw_relief_border w ();
  List.iter
    (fun item ->
      let gc color = Tk.Core.widget_gc w ~fg:color ~font:"-font" () in
      match (item.kind, Array.to_list item.coords) with
      | Line, [ x1; y1; x2; y2 ] ->
        Server.draw_line app.Tk.Core.conn w.Tk.Core.win (gc item.fill) ~x1 ~y1
          ~x2 ~y2
      | Rectangle, [ x1; y1; x2; y2 ] ->
        let rect =
          Geom.rect ~x:(min x1 x2) ~y:(min y1 y2) ~width:(abs (x2 - x1))
            ~height:(abs (y2 - y1))
        in
        if item.fill <> "" then
          Server.fill_rect app.Tk.Core.conn w.Tk.Core.win (gc item.fill) rect;
        if item.outline <> "" then
          Server.draw_rect app.Tk.Core.conn w.Tk.Core.win (gc item.outline) rect
      | Text_item, x :: y :: _ ->
        Server.draw_text app.Tk.Core.conn w.Tk.Core.win (gc item.fill) ~x ~y
          item.text
      | _ -> ())
    (List.rev s.items)

let compute_geometry w =
  Tk.Core.request_size w
    ~width:(Tk.Core.get_pixels w "-width")
    ~height:(Tk.Core.get_pixels w "-height")

let parse_int spec =
  match int_of_string_opt spec with
  | Some i -> i
  | None -> failf "expected integer but got \"%s\"" spec

(* Parse trailing -fill/-outline/-text options of a create command. *)
let rec parse_item_options item = function
  | [] -> ()
  | "-fill" :: v :: rest ->
    item.fill <- v;
    parse_item_options item rest
  | "-outline" :: v :: rest ->
    item.outline <- v;
    parse_item_options item rest
  | "-text" :: v :: rest ->
    item.text <- v;
    parse_item_options item rest
  | bad :: _ -> failf "unknown canvas item option \"%s\"" bad

let find_item s id =
  match List.find_opt (fun i -> i.id = parse_int id) s.items with
  | Some item -> item
  | None -> failf "item \"%s\" doesn't exist" id

let split_coords_options args =
  let rec go coords = function
    | v :: rest when v <> "" && (v.[0] <> '-' || (String.length v > 1 && Tcl.Chars.is_digit v.[1])) ->
      go (parse_int v :: coords) rest
    | rest -> (Array.of_list (List.rev coords), rest)
  in
  go [] args

let create_item w kind args =
  let s = data w in
  let coords, options = split_coords_options args in
  let expected =
    match kind with Line | Rectangle -> 4 | Text_item -> 2
  in
  if Array.length coords <> expected then
    failf "wrong # coordinates: expected %d, got %d" expected
      (Array.length coords);
  let item =
    {
      id = s.next_id;
      kind;
      coords;
      fill = (match kind with Text_item -> "black" | _ -> "black");
      outline = (match kind with Rectangle -> "" | _ -> "");
      text = "";
    }
  in
  (match kind with
  | Rectangle -> item.fill <- ""
  | Line | Text_item -> ());
  (match kind with
  | Rectangle -> item.outline <- "black"
  | Line | Text_item -> ());
  parse_item_options item options;
  s.next_id <- s.next_id + 1;
  s.items <- item :: s.items;
  Tk.Core.schedule_redraw w;
  item.id

let subcommands w words =
  let s = data w in
  let ok = Tcl.Interp.ok in
  match words with
  | _ :: "create" :: kind :: args ->
    let kind =
      match kind with
      | "line" -> Line
      | "rectangle" | "rect" -> Rectangle
      | "text" -> Text_item
      | k -> failf "unknown canvas item type \"%s\"" k
    in
    ok (string_of_int (create_item w kind args))
  | [ _; "delete"; "all" ] ->
    s.items <- [];
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "delete"; id ] ->
    let item = find_item s id in
    s.items <- List.filter (fun i -> i != item) s.items;
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "move"; id; dx; dy ] ->
    let item = find_item s id in
    let dx = parse_int dx and dy = parse_int dy in
    item.coords <-
      Array.mapi
        (fun i v -> if i mod 2 = 0 then v + dx else v + dy)
        item.coords;
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "coords"; id ] ->
    let item = find_item s id in
    ok
      (Tcl.Tcl_list.format
         (Array.to_list (Array.map string_of_int item.coords)))
  | _ :: "coords" :: id :: (_ :: _ as new_coords) ->
    let item = find_item s id in
    item.coords <- Array.of_list (List.map parse_int new_coords);
    Tk.Core.schedule_redraw w;
    ok ""
  | [ _; "type"; id ] ->
    ok
      (match (find_item s id).kind with
      | Line -> "line"
      | Rectangle -> "rectangle"
      | Text_item -> "text")
  | [ _; "itemcount" ] -> ok (string_of_int (List.length s.items))
  | _ :: sub :: _ -> failf "bad option \"%s\" for %s" sub w.Tk.Core.path
  | _ -> Tcl.Interp.wrong_args (w.Tk.Core.path ^ " option ?arg ...?")

let make_class () =
  let cls = Tk.Core.make_class ~name:"Canvas" ~specs () in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      compute_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- display;
  cls.Tk.Core.subcommands <- subcommands;
  cls

let install app =
  Wutil.standard_creator app ~command:"canvas" ~make:make_class
    ~subs:
      Tcl.Interp.
        [
          subsig "create" 1;
          subsig "delete" 1 ~max:1;
          subsig "move" 3 ~max:3;
          subsig "coords" 1;
          subsig "type" 1 ~max:1;
          subsig "itemcount" 0 ~max:0;
        ]
    ~data:(fun () -> Canvas_data { items = []; next_id = 1 })
    ()
