open Xsim

let failf = Tcl.Interp.failf

type state = { mutable value : int }

type Tk.Core.wdata += Scale_data of state

let data w =
  match w.Tk.Core.data with
  | Scale_data s -> s
  | _ -> failf "%s is not a scale" w.Tk.Core.path

let value w = (data w).value

let specs =
  Tk.Core.
    [
      spec ~switch:"-from" ~db:"from" ~cls:"From" ~default:"0" Ot_int;
      spec ~switch:"-to" ~db:"to" ~cls:"To" ~default:"100" Ot_int;
      spec ~switch:"-length" ~db:"length" ~cls:"Length" ~default:"100"
        Ot_pixels;
      spec ~switch:"-width" ~db:"width" ~cls:"Width" ~default:"15" Ot_pixels;
      spec ~switch:"-orient" ~db:"orient" ~cls:"Orient" ~default:"horizontal"
        Ot_string;
      spec ~switch:"-command" ~db:"command" ~cls:"Command" ~default:""
        Ot_string;
      spec ~switch:"-label" ~db:"label" ~cls:"Label" ~default:"" Ot_string;
      spec ~switch:"-showvalue" ~db:"showValue" ~cls:"ShowValue" ~default:"1"
        Ot_boolean;
      spec ~switch:"-font" ~db:"font" ~cls:"Font" ~default:"fixed" Ot_font;
      spec ~switch:"-foreground" ~db:"foreground" ~cls:"Foreground"
        ~default:"black" Ot_color;
      spec ~switch:"-fg" ~db:"foreground" ~cls:"Foreground" ~default:"black"
        Ot_color;
      spec ~switch:"-background" ~db:"background" ~cls:"Background"
        ~default:"#cccccc" Ot_color;
      spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"#cccccc"
        Ot_color;
      spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
        ~default:"2" Ot_pixels;
      spec ~switch:"-relief" ~db:"relief" ~cls:"Relief" ~default:"flat"
        Ot_relief;
    ]

let horizontal w = Tk.Core.get_string w "-orient" <> "vertical"

let bounds w = (Tk.Core.get_int w "-from", Tk.Core.get_int w "-to")

let clamp w v =
  let lo, hi = bounds w in
  let lo, hi = (min lo hi, max lo hi) in
  max lo (min hi v)

let set_value w v ~notify =
  let s = data w in
  let v = clamp w v in
  if v <> s.value then begin
    s.value <- v;
    Tk.Core.schedule_redraw w;
    if notify then begin
      let command = Tk.Core.get_string w "-command" in
      if command <> "" then
        Wutil.invoke_widget_script w (command ^ " " ^ string_of_int v)
    end
  end

let value_at w pos =
  let lo, hi = bounds w in
  let length = max 1 (Tk.Core.get_pixels w "-length") in
  lo + ((hi - lo) * max 0 (min pos length) / length)

let handle_event w (event : Event.t) =
  match event with
  | Event.Button_press { button = 1; bx; by; _ } ->
    set_value w (value_at w (if horizontal w then bx else by)) ~notify:true
  | Event.Motion { mx; my; motion_state; _ } when motion_state.Event.button1 ->
    set_value w (value_at w (if horizontal w then mx else my)) ~notify:true
  | _ -> ()

let display w =
  let s = data w in
  let app = w.Tk.Core.app in
  let font = Wutil.widget_font w in
  Wutil.draw_background w ();
  Wutil.draw_relief_border w ();
  let gc = Tk.Core.widget_gc w ~fg:"-foreground" ~font:"-font" () in
  let label = Tk.Core.get_string w "-label" in
  let show = Tk.Core.get_boolean w "-showvalue" in
  let header =
    match (label, show) with
    | "", true -> string_of_int s.value
    | "", false -> ""
    | l, true -> Printf.sprintf "%s: %d" l s.value
    | l, false -> l
  in
  if header <> "" then
    Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc ~x:4 ~y:font.Font.ascent
      header;
  let lo, hi = bounds w in
  let length = max 1 (Tk.Core.get_pixels w "-length") in
  let frac =
    if hi = lo then 0.0
    else float_of_int (s.value - lo) /. float_of_int (hi - lo)
  in
  let pos = int_of_float (frac *. float_of_int length) in
  let track_y = w.Tk.Core.height - 10 in
  if horizontal w then begin
    Server.draw_line app.Tk.Core.conn w.Tk.Core.win gc ~x1:0 ~y1:track_y
      ~x2:length ~y2:track_y;
    Server.fill_rect app.Tk.Core.conn w.Tk.Core.win gc
      (Geom.rect ~x:(max 0 (pos - 4)) ~y:(track_y - 6) ~width:8 ~height:12)
  end
  else begin
    Server.draw_line app.Tk.Core.conn w.Tk.Core.win gc ~x1:(w.Tk.Core.width / 2)
      ~y1:0 ~x2:(w.Tk.Core.width / 2) ~y2:length;
    Server.fill_rect app.Tk.Core.conn w.Tk.Core.win gc
      (Geom.rect
         ~x:((w.Tk.Core.width / 2) - 6)
         ~y:(max 0 (pos - 4)) ~width:12 ~height:8)
  end

let compute_geometry w =
  let font = Wutil.widget_font w in
  let length = Tk.Core.get_pixels w "-length" in
  let width = Tk.Core.get_pixels w "-width" in
  let header = Font.line_height font + 4 in
  if horizontal w then
    Tk.Core.request_size w ~width:(length + 8) ~height:(width + header)
  else Tk.Core.request_size w ~width:(width + 40) ~height:(length + header)

let subcommands w words =
  let s = data w in
  let ok = Tcl.Interp.ok in
  match words with
  | [ _; "get" ] -> ok (string_of_int s.value)
  | [ _; "set"; v ] -> (
    match int_of_string_opt v with
    | Some v ->
      set_value w v ~notify:false;
      ok ""
    | None -> failf "expected integer but got \"%s\"" v)
  | _ :: sub :: _ -> failf "bad option \"%s\" for %s" sub w.Tk.Core.path
  | _ -> Tcl.Interp.wrong_args (w.Tk.Core.path ^ " option ?arg ...?")

let make_class () =
  let cls = Tk.Core.make_class ~name:"Scale" ~specs () in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      compute_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- display;
  cls.Tk.Core.handle_event <- handle_event;
  cls.Tk.Core.subcommands <- subcommands;
  cls

let install app =
  Wutil.standard_creator app ~command:"scale" ~make:make_class
    ~data:(fun () -> Scale_data { value = 0 })
    ~subs:Tcl.Interp.[ subsig "get" 0 ~max:0; subsig "set" 1 ~max:1 ]
    ()
