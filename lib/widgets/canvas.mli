(** A structured-graphics canvas: the paper's §5 plan to "enhance wish with
    drawing commands for shapes and text", realised as a widget that holds
    100k items with flat per-edit cost.

    Items are created by Tcl commands and keep an integer id; any item can
    also carry symbolic tags, and every verb below accepts a tag wherever
    it accepts an id (a bulk operation over the tag's items):

    {v
      .c create line x1 y1 x2 y2 ?-fill color? ?-tags list?
      .c create rectangle x1 y1 x2 y2 ?-fill c? ?-outline c? ?-tags list?
      .c create text x y ?-text string? ?-fill color? ?-tags list?
    v}

    Widget commands: [create], [delete tagOrId...|all],
    [move tagOrId dx dy], [scale tagOrId xo yo xs ys],
    [coords id ?x1 y1 ...?], [itemconfigure tagOrId ?opt val ...?],
    [addtag tag searchSpec], [dtag tagOrId ?tag?], [gettags tagOrId],
    [find all|withtag t|overlapping x1 y1 x2 y2|enclosed x1 y1 x2 y2|
    closest x y ?halo?], [bbox tagOrId...], [raise]/[lower]
    [tagOrId ?relativeTo?], [itemcount], [type id].

    Internally items sit in a dense array behind an id→slot hashtable with
    cached bounding boxes; a loose uniform grid over the bboxes serves
    [find] and exposure queries, and edits repaint through the damage
    pipeline ({!Tk.Core.schedule_damage}) — see the [tk.canvas.*]
    counters. *)

val install : Tk.Core.app -> unit

val item_count : Tk.Core.widget -> int

val set_index_enabled : bool -> unit
(** Ablation switch ([wish -no-canvas-index]): canvases created while
    disabled answer every spatial query with an O(n) linear scan instead
    of the grid index. Existing canvases are unaffected. *)
