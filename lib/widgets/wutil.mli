(** Shared helpers for widget implementations: text metrics, standard
    drawing (background, relief, anchored text) and the widget-creation
    command plumbing. *)

open Xsim

val widget_font : Tk.Core.widget -> Font.t
(** The widget's [-font], through the resource cache. *)

val draw_background : Tk.Core.widget -> ?color:string -> unit -> unit
(** Fill the window with [-background] (or the named option/color). *)

val draw_relief_border : Tk.Core.widget -> ?relief:Tk.Core.relief -> unit -> unit
(** Draw the 3-D border per [-relief] and [-borderwidth]. *)

val draw_anchored_text :
  Tk.Core.widget ->
  ?fg:string ->
  ?font:string ->
  ?dx:int ->
  text:string ->
  anchor:Tk.Core.anchor ->
  unit ->
  unit
(** Draw a (possibly multi-line) string positioned by the anchor within the
    widget's interior, inset by [-borderwidth] plus padding. [dx] shifts
    the text area right (for check/radio indicators). *)

val text_block_size : Font.t -> string -> int * int
(** Width/height in pixels of a multi-line string. *)

val declare_widget :
  Tk.Core.app ->
  command:string ->
  ?subs:Tcl.Interp.sub_sig list ->
  Tk.Core.wclass ->
  unit
(** Publish a widget class into the interpreter signature registry: the
    creation command's arity, the [-option] set taken verbatim from the
    class's configure spec table, and per-widget subcommand arities.
    Purely descriptive — dispatch never consults it; the lint passes do. *)

val standard_creator :
  Tk.Core.app ->
  command:string ->
  make:(unit -> Tk.Core.wclass) ->
  ?data:(unit -> Tk.Core.wdata) ->
  ?post_create:(Tk.Core.widget -> unit) ->
  ?subs:Tcl.Interp.sub_sig list ->
  unit ->
  unit
(** Register a widget-creation Tcl command (paper §4): [command .path
    ?-option value ...?] creates the widget and returns its path name.
    [data] builds the fresh widget-private state installed before the
    initial configuration runs. Also calls {!declare_widget} with [subs]
    so the class is visible to the static analyzer. *)

val invoke_widget_script : Tk.Core.widget -> string -> unit
(** Run a widget action script (e.g. a button's [-command]) through the
    application's error reporting. *)

val inside : Tk.Core.widget -> x:int -> y:int -> bool
(** Is a window-relative point inside the widget? (Used for
    press-then-release-outside behaviour.) *)
