open Xsim

let specs =
  Tk.Core.
    [
      spec ~switch:"-text" ~db:"text" ~cls:"Text" ~default:"" Ot_string;
      spec ~switch:"-font" ~db:"font" ~cls:"Font" ~default:"fixed" Ot_font;
      spec ~switch:"-foreground" ~db:"foreground" ~cls:"Foreground"
        ~default:"black" Ot_color;
      spec ~switch:"-fg" ~db:"foreground" ~cls:"Foreground" ~default:"black"
        Ot_color;
      spec ~switch:"-background" ~db:"background" ~cls:"Background"
        ~default:"#cccccc" Ot_color;
      spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"#cccccc"
        Ot_color;
      spec ~switch:"-width" ~db:"width" ~cls:"Width" ~default:"200" Ot_pixels;
      spec ~switch:"-justify" ~db:"justify" ~cls:"Justify" ~default:"left"
        Ot_string;
      spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
        ~default:"1" Ot_pixels;
      spec ~switch:"-relief" ~db:"relief" ~cls:"Relief" ~default:"flat"
        Ot_relief;
      spec ~switch:"-padx" ~db:"padX" ~cls:"Pad" ~default:"2" Ot_pixels;
      spec ~switch:"-pady" ~db:"padY" ~cls:"Pad" ~default:"2" Ot_pixels;
    ]

let wrap_text font ~width text =
  let wrap_line line =
    let words = List.filter (fun s -> s <> "") (String.split_on_char ' ' line) in
    match words with
    | [] -> [ "" ]
    | first :: rest ->
      let lines, current =
        List.fold_left
          (fun (done_lines, current) word ->
            let candidate = current ^ " " ^ word in
            if Font.text_width font candidate <= width then (done_lines, candidate)
            else (current :: done_lines, word))
          ([], first) rest
      in
      List.rev (current :: lines)
  in
  List.concat_map wrap_line (String.split_on_char '\n' text)

let layout w =
  let font = Wutil.widget_font w in
  let width = Tk.Core.get_pixels w "-width" in
  wrap_text font ~width (Tk.Core.get_string w "-text")

let compute_geometry w =
  let font = Wutil.widget_font w in
  let lines = layout w in
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let padx = Tk.Core.get_pixels w "-padx" in
  let pady = Tk.Core.get_pixels w "-pady" in
  let text_w =
    List.fold_left (fun acc l -> max acc (Font.text_width font l)) 0 lines
  in
  let text_h = max 1 (List.length lines) * Font.line_height font in
  Tk.Core.request_size w
    ~width:(text_w + (2 * (bw + padx)))
    ~height:(text_h + (2 * (bw + pady)))

let display w =
  let app = w.Tk.Core.app in
  let font = Wutil.widget_font w in
  let gc = Tk.Core.widget_gc w ~fg:"-foreground" ~font:"-font" () in
  Wutil.draw_background w ();
  Wutil.draw_relief_border w ();
  let bw = Tk.Core.get_pixels w "-borderwidth" in
  let padx = Tk.Core.get_pixels w "-padx" in
  let pady = Tk.Core.get_pixels w "-pady" in
  let justify = Tk.Core.get_string w "-justify" in
  let avail_w = w.Tk.Core.width - (2 * (bw + padx)) in
  List.iteri
    (fun i line ->
      let lw = Font.text_width font line in
      let x =
        match justify with
        | "right" -> bw + padx + avail_w - lw
        | "center" -> bw + padx + ((avail_w - lw) / 2)
        | _ -> bw + padx
      in
      let y = bw + pady + (i * Font.line_height font) + font.Font.ascent in
      Server.draw_text app.Tk.Core.conn w.Tk.Core.win gc ~x ~y line)
    (layout w)

let make_class () =
  let cls = Tk.Core.make_class ~name:"Message" ~specs () in
  cls.Tk.Core.configure_hook <-
    (fun w ->
      Tk.Core.absorb w.Tk.Core.app ~default:() (fun () ->
          Server.set_window_background w.Tk.Core.app.Tk.Core.conn
            w.Tk.Core.win
            (Tk.Core.get_color w "-background"));
      compute_geometry w;
      Tk.Core.schedule_redraw w);
  cls.Tk.Core.display <- display;
  cls

let install app =
  Wutil.standard_creator app ~command:"message" ~make:make_class ()
