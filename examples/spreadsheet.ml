(* Section 6's spreadsheet sketch: "A Tk-based spreadsheet might permit
   cells to contain embedded Tcl commands. When such a cell is evaluated
   the Tcl command would be executed automatically; it could fetch
   information from an independent database package or from any other
   program in the environment."

   Two applications:
   - "database": a trivial key-value store exposing Tcl primitives
     (dbset / dbget).
   - "sheet": a 3x3 grid of label widgets. Each cell holds either a plain
     value or an embedded Tcl command (prefixed with '='). Recalculation
     evaluates the embedded commands; =-cells can reference other cells
     (via the 'cell' command) or reach into the database app with send.
   - "plot": a streaming dashboard on a canvas.  It seeds a 100k-item
     scatter archive, then polls the database once per frame and appends
     a live sample; each frame disturbs only a handful of items, so the
     damage-region pipeline repaints O(dirty) — watch the tk.canvas.*
     counters printed at the end. *)

open Xsim

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "[%s] %s: %s" app.Tk.Core.app_name script msg)

let () =
  let server = Server.create () in
  let sheet = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"sheet" () in
  let db = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"database" () in

  print_endline "== Section 6: a spreadsheet with embedded Tcl commands ==";
  print_endline "";

  (* --- The database application: two primitives, dbset and dbget. --- *)
  ignore (run db "proc dbset {key value} {global DB; set DB($key) $value}");
  ignore
    (run db
       "proc dbget {key} {global DB; if [info exists DB($key)] {return \
        $DB($key)} else {return 0}}");
  ignore (run db "dbset widgets-sold 412");
  ignore (run db "dbset price-each 3");

  (* --- The spreadsheet --- *)
  (* The grid: rows of frames, each holding label widgets. *)
  ignore (run sheet "option add *Label.relief sunken");
  for r = 0 to 2 do
    ignore (run sheet (Printf.sprintf "frame .r%d" r));
    for c = 0 to 2 do
      ignore
        (run sheet
           (Printf.sprintf "label .r%d.c%d -width 14 -text {}" r c));
      ignore (run sheet (Printf.sprintf "pack append .r%d .r%d.c%d {left}" r r c))
    done;
    ignore (run sheet (Printf.sprintf "pack append . .r%d {top}" r))
  done;

  (* Cell contents live in the array 'formula'; 'cell' reads a computed
     value; 'recalc' evaluates every formula in order. *)
  ignore
    (run sheet
       "proc cell {r c} {global value; return $value($r,$c)}\n\
        proc setcell {r c f} {global formula; set formula($r,$c) $f}\n\
        proc recalc {} {\n\
       \  global formula value\n\
       \  foreach k [lsort [array names formula]] {\n\
       \    set f $formula($k)\n\
       \    if {[string index $f 0] == \"=\"} {\n\
       \      set value($k) [eval [string range $f 1 end]]\n\
       \    } else {\n\
       \      set value($k) $f\n\
       \    }\n\
       \    scan $k {%d,%d} r c\n\
       \    .r$r.c$c configure -text $value($k)\n\
       \  }\n\
        }");

  (* Fill the sheet: plain values, a cross-cell formula, and two cells
     whose embedded commands reach into the database application. *)
  ignore (run sheet "setcell 0 0 {Units:}");
  ignore (run sheet "setcell 0 1 {=send database {dbget widgets-sold}}");
  ignore (run sheet "setcell 1 0 {Price:}");
  ignore (run sheet "setcell 1 1 {=send database {dbget price-each}}");
  ignore (run sheet "setcell 2 0 {Total:}");
  ignore (run sheet "setcell 2 1 {=expr {[cell 0 1] * [cell 1 1]}}");
  ignore (run sheet "recalc");
  Tk.Core.update_all server;

  print_endline "After the first recalculation:";
  print_string
    (Raster.render server ~window:(Tk.Core.main_widget sheet).Tk.Core.win ());
  print_endline "";
  Printf.printf "Total cell computes %s * %s = %s\n" (run sheet "cell 0 1")
    (run sheet "cell 1 1") (run sheet "cell 2 1");
  print_endline "";

  (* The database changes — the spreadsheet "reaches out and retrieves
     fresh data values" on the next evaluation. *)
  print_endline "The database is updated (dbset widgets-sold 1000) and the";
  print_endline "sheet recalculates:";
  ignore (run db "dbset widgets-sold 1000");
  ignore (run sheet "recalc");
  Tk.Core.update_all server;
  Printf.printf "Total is now: %s\n" (run sheet "cell 2 1");
  print_endline "";
  print_string
    (Raster.render server ~window:(Tk.Core.main_widget sheet).Tk.Core.win ());
  print_endline "";

  (* And any other application can drive the whole spreadsheet. *)
  ignore
    (run db "send sheet {setcell 2 2 {=format {(%d rows)} 3}; recalc}");
  Tk.Core.update_all server;
  Printf.printf "A remote send added a new formula cell: %s\n"
    (run sheet "cell 2 2");

  (* --- The plot application: a streaming dashboard at 100k items --- *)
  print_endline "";
  print_endline "== The plot application: streaming 100k-item dashboard ==";
  let plot = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"plot" () in
  ignore (run plot "canvas .plot -width 300 -height 200");
  ignore (run plot "pack append . .plot {top}");
  Tk.Core.update_all server;

  (* The archive: 100k historical samples scattered over a tall virtual
     plane, created in one batch (all the damage coalesces into a single
     repaint), plus axes and the live-readout items. *)
  let archive = 100_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to archive - 1 do
    let x = i * 2654435761 land 0x3FFFFFFF mod 280
    and y = (i * 1327217885) land 0x3FFFFFFF mod 4000 in
    ignore
      (run plot
         (Printf.sprintf ".plot create rectangle %d %d %d %d -tags archive"
            (10 + x) (30 + y) (11 + x) (31 + y)))
  done;
  ignore (run plot ".plot create line 10 170 290 170");
  ignore (run plot ".plot create line 10 170 10 30");
  ignore (run plot ".plot create line 10 30 10 30 -tags cursor");
  ignore (run plot ".plot create text 14 20 -text {waiting...} -tags readout");
  Tk.Core.update_all server;
  Printf.printf "archive of %s items built in %.2fs\n"
    (run plot ".plot itemcount")
    (Unix.gettimeofday () -. t0);

  (* Stream: one frame per new database sample. Each frame appends a
     point, drags the cursor line, and rewrites the readout — a few dirty
     items against the 100k-item store, repainted through the damage
     pipeline rather than a full redraw. *)
  ignore (run db "dbset samples-seen 0");
  ignore
    (run db
       "proc dbnext {} {global DB; set DB(samples-seen) [expr \
        $DB(samples-seen)+1]; return [expr ($DB(samples-seen)*37)%130]}");
  let frames = 30 in
  let t0 = Unix.gettimeofday () in
  for frame = 1 to frames do
    let v = int_of_string (run plot "send database {dbnext}") in
    let x = 12 + (frame * 9) and y = 168 - v in
    ignore
      (run plot
         (Printf.sprintf ".plot create rectangle %d %d %d %d -fill black -tags live"
            x y (x + 2) (y + 2)));
    ignore
      (run plot
         (Printf.sprintf ".plot coords [.plot find withtag cursor] %d 170 %d 30"
            x x));
    ignore
      (run plot
         (Printf.sprintf
            ".plot itemconfigure readout -text {frame %d: value %d}" frame v));
    Tk.Core.update_all server
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "streamed %d frames in %.1fms (%.0fus/frame)\n" frames
    (dt *. 1000.0)
    (dt *. 1e6 /. float_of_int frames);
  Printf.printf "live samples plotted: %s; items near the cursor: %s\n"
    (run plot "llength [.plot find withtag live]")
    (run plot
       "llength [.plot find overlapping [expr 12+9*25] 30 [expr 12+9*30] \
        170]");

  let counter name =
    match Tk.Core.metric plot name with Some v -> v | None -> "0"
  in
  print_endline "";
  print_endline "Canvas counters for the whole dashboard run:";
  List.iter
    (fun c -> Printf.printf "  %-32s %s\n" c (counter c))
    [
      "tk.canvas.index_queries";
      "tk.canvas.full_redraws";
      "tk.canvas.damage_redraws";
      "tk.canvas.items_considered";
      "tk.canvas.items_drawn";
      "tk.damage.coalesced";
      "tk.damage.deopt_full";
    ];
  Printf.printf
    "(items_drawn counts every repaint; %d frames over a %s-item store \
     touched a handful each.)\n"
    frames
    (run plot ".plot itemcount")
