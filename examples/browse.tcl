#!wish -f
# Figure 9 of the paper: a directory browser as a wish script.
# Run with:  dune exec bin/wish.exe -- -f examples/browse.tcl
# (the "exec mx"/"exec sh" spawns of the original print their action
# instead, since the sandbox has no mx editor)
scrollbar .scroll -command ".list view"
listbox .list -scroll ".scroll set" -relief raised -geometry 20x20
pack append . .scroll {right filly} .list {left expand fill}
proc browse {dir file} {
  if {[string compare $dir "."] != 0} {set file $dir/$file}
  if [file $file isdirectory] {
    print "browse: would spawn: sh -c \{browse $file &\}\n"
  } else {
    if [file $file isfile] {
      print "browse: would spawn: mx $file\n"
    } else {
      print "$file isn't a directory or regular file\n"
    }
  }
}
if $argc>0 {set dir [index $argv 0]} else {set dir "."}
foreach i [exec ls -a $dir] {
  .list insert end $i
}
bind .list <space> {foreach i [selection get] {browse $dir $i}}
bind .list <Control-q> {destroy .}
wm title . browse
update
print [screendump .]
