(* Interpreter isolation (PR7): slave interpreter trees, -safe hiding
   and hidden-command denial, alias marshalling into the master,
   resource limits (time on an injected clock, command budgets,
   granularity, trip stickiness), async cancellation, and per-interp
   recursion limits.  Everything here drives the [interp] command
   surface backed by the guard machinery in [Tcl.Interp]. *)

let new_interp () = Tcl.Builtins.new_interp ()

let run tcl script =
  match Tcl.Interp.eval_value tcl script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let expect_error tcl script =
  match Tcl.Interp.eval_value tcl script with
  | Ok v -> Alcotest.failf "script %S unexpectedly succeeded with %S" script v
  | Error msg -> msg

let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let slave tcl name =
  match Tcl.Interp.find_slave tcl name with
  | Some s -> s
  | None -> Alcotest.failf "slave %S not found" name

(* ------------------------------------------------------------------ *)
(* Slave tree lifecycle *)

let create_eval_delete () =
  let t = new_interp () in
  check_string "create returns path" "s" (run t "interp create s");
  check_string "exists" "1" (run t "interp exists s");
  check_string "slave evaluates" "7" (run t "interp eval s {expr {3 + 4}}");
  check_string "delete" "" (run t "interp delete s");
  check_string "gone" "0" (run t "interp exists s");
  let msg = expect_error t "interp eval s {set x 1}" in
  check_bool "eval after delete fails" true
    (contains ~needle:"could not find interpreter" msg)

let variables_are_isolated () =
  let t = new_interp () in
  ignore (run t "set x master");
  ignore (run t "interp create s");
  ignore (run t "interp eval s {set x slave}");
  check_string "master var untouched" "master" (run t "set x");
  check_string "slave var separate" "slave" (run t "interp eval s {set x}");
  ignore (run t "proc only_here {} {return yes}");
  let msg = expect_error t "interp eval s only_here" in
  check_bool "master procs invisible in slave" true
    (contains ~needle:"invalid command" msg)

let auto_names () =
  let t = new_interp () in
  check_string "first auto name" "interp0" (run t "interp create");
  check_string "second auto name" "interp1" (run t "interp create");
  check_string "both listed" "interp0 interp1" (run t "lsort [interp slaves]")

let duplicate_create_fails () =
  let t = new_interp () in
  ignore (run t "interp create s");
  let msg = expect_error t "interp create s" in
  check_bool "duplicate rejected" true
    (contains ~needle:"already exists" msg)

let nested_tree_and_recursive_teardown () =
  let t = new_interp () in
  ignore (run t "interp create a");
  ignore (run t "interp eval a {interp create b}");
  check_string "nested path exists" "1" (run t "interp exists {a b}");
  check_string "a's slaves" "b" (run t "interp slaves a");
  ignore (run t "interp eval a {interp eval b {set deep 3}}");
  ignore (run t "interp delete a");
  check_string "a gone" "0" (run t "interp exists a");
  check_string "descendant gone with it" "0" (run t "interp exists {a b}")

let delete_unknown_errors () =
  let t = new_interp () in
  let msg = expect_error t "interp delete nosuch" in
  check_bool "delete unknown" true
    (contains ~needle:"could not find interpreter" msg)

let slave_errors_propagate () =
  let t = new_interp () in
  ignore (run t "interp create s");
  let msg = expect_error t "interp eval s {error boom}" in
  check_string "slave error text" "boom" msg;
  check_string "master still fine" "ok" (run t "set y ok")

(* ------------------------------------------------------------------ *)
(* Safety: hiding, denial, invokehidden, expose *)

let safe_slave_denies_unsafe () =
  let t = new_interp () in
  ignore (run t "interp create -safe s");
  check_string "issafe" "1" (run t "interp issafe s");
  check_string "master is not safe" "0" (run t "interp issafe");
  let hidden = run t "interp hidden s" in
  check_bool "exit hidden" true (contains ~needle:"exit" hidden);
  let msg = expect_error t "interp eval s {exit 1}" in
  check_string "denial message"
    "permission denied: command \"exit\" is hidden" msg;
  let s = slave t "s" in
  check_bool "denial counted" true (Tcl.Interp.denied_count s > 0)

let denial_is_catchable () =
  let t = new_interp () in
  ignore (run t "interp create -safe s");
  check_string "catch sees the denial"
    "permission denied: command \"exit\" is hidden"
    (run t "interp eval s {catch {exit 1} m; set m}")

let safe_slave_cannot_escalate () =
  let t = new_interp () in
  ignore (run t "interp create -safe s");
  let msg = expect_error t "interp eval s {interp create evil}" in
  check_bool "interp machinery hidden" true
    (contains ~needle:"permission denied" msg);
  let msg = expect_error t "interp eval s {source /etc/passwd}" in
  check_bool "source hidden" true
    (contains ~needle:"permission denied" msg)

let hide_expose_roundtrip () =
  let t = new_interp () in
  ignore (run t "interp create s");
  ignore (run t "interp eval s {proc greet {} {return hi}}");
  check_string "visible before hide" "hi" (run t "interp eval s greet");
  ignore (run t "interp hide s greet");
  let msg = expect_error t "interp eval s greet" in
  check_bool "hidden now denied" true
    (contains ~needle:"permission denied" msg);
  check_string "master invokes hidden" "hi" (run t "interp invokehidden s greet");
  ignore (run t "interp expose s greet");
  check_string "visible again" "hi" (run t "interp eval s greet")

let expose_under_new_name () =
  let t = new_interp () in
  ignore (run t "interp create s");
  ignore (run t "interp eval s {proc orig {} {return v}}");
  ignore (run t "interp hide s orig");
  ignore (run t "interp expose s orig renamed");
  check_string "exposed under alias name" "v" (run t "interp eval s renamed")

(* ------------------------------------------------------------------ *)
(* Aliases: marshalled through the creating interpreter *)

let alias_marshals_into_master () =
  let t = new_interp () in
  ignore (run t "proc addup {a b} {expr {$a + $b}}");
  ignore (run t "interp create s");
  ignore (run t "interp alias s plus {} addup 10");
  check_string "bound word + slave args" "15" (run t "interp eval s {plus 5}");
  check_string "alias listed" "plus" (run t "interp aliases s");
  check_string "target query" "addup" (run t "interp alias s plus")

let alias_runs_in_master_scope () =
  let t = new_interp () in
  ignore (run t "set secret 42");
  ignore (run t "proc reveal {} {global secret; return $secret}");
  ignore (run t "interp create s");
  ignore (run t "interp alias s ask {} reveal");
  (* The alias body sees the master's globals; the slave still can't. *)
  check_string "alias reads master state" "42" (run t "interp eval s ask");
  let msg = expect_error t "interp eval s {set secret}" in
  check_bool "slave itself has no such var" true
    (contains ~needle:"no such variable" msg)

let alias_into_safe_slave () =
  let t = new_interp () in
  ignore (run t "proc audit {what} {return logged:$what}");
  ignore (run t "interp create -safe s");
  ignore (run t "interp alias s log {} audit");
  check_string "safe slave calls out through alias" "logged:boot"
    (run t "interp eval s {log boot}")

(* ------------------------------------------------------------------ *)
(* Resource limits *)

(* An injected limit clock that ticks 1 ms per read: time limits trip
   after a deterministic number of boundary checks. *)
let with_ticking_clock () =
  let t = new_interp () in
  let ticks = ref 0 in
  Tcl.Interp.set_limit_clock t
    (Some
       (fun () ->
         incr ticks;
         !ticks));
  (t, ticks)

let command_budget_kills_runaway () =
  let t = new_interp () in
  ignore (run t "interp create s");
  ignore (run t "interp limit s commands -value 50");
  check_string "query reads back" "50" (run t "interp limit s commands");
  let msg = expect_error t "interp eval s {while 1 {set spin 1}}" in
  check_string "runaway stopped" "command count limit exceeded" msg

let time_limit_on_injected_clock () =
  let master, _ticks = with_ticking_clock () in
  (* The slave inherits the master's limit clock at creation. *)
  ignore (run master "interp create s");
  ignore (run master "interp limit s time -value 5");
  let msg = expect_error master "interp eval s {while 1 {set spin 1}}" in
  check_string "time runaway stopped" "time limit exceeded" msg

let limit_trip_is_sticky_until_rearm () =
  let t = new_interp () in
  ignore (run t "interp create s");
  ignore (run t "interp limit s commands -value 20");
  ignore (expect_error t "interp eval s {while 1 {set spin 1}}");
  (* Still tripped: even a trivial script is refused... *)
  let msg = expect_error t "interp eval s {set a 1}" in
  check_string "sticky" "command count limit exceeded" msg;
  (* ...until the budget is re-armed (here: raised). *)
  ignore (run t "interp limit s commands -value 1000");
  check_string "re-armed budget admits work" "1" (run t "interp eval s {set a 1}");
  (* Disarming entirely also clears it. *)
  ignore (run t "interp limit s commands -value 0");
  check_string "disarmed" "ok" (run t "interp eval s {set b ok}")

let catch_cannot_swallow_limit () =
  let t = new_interp () in
  ignore (run t "interp create s");
  ignore (run t "interp limit s commands -value 30");
  (* The limit error unwinds through catch: the whole eval fails. *)
  let msg =
    expect_error t "interp eval s {catch {while 1 {set spin 1}} m; set m}"
  in
  check_string "catch no shield" "command count limit exceeded" msg

let granularity_thins_clock_reads () =
  let reads_with g =
    let master, ticks = with_ticking_clock () in
    ignore (run master "interp create s");
    ignore
      (run master
         (Printf.sprintf "interp limit s time -value 2000 -granularity %d" g));
    let before = !ticks in
    ignore (run master "interp eval s {set i 0; while {$i < 100} {incr i}}");
    !ticks - before
  in
  let fine = reads_with 1 and coarse = reads_with 10 in
  check_bool
    (Printf.sprintf "granularity 10 reads clock less (%d < %d)" coarse fine)
    true
    (coarse < fine)

let limit_bad_args () =
  let t = new_interp () in
  ignore (run t "interp create s");
  let msg = expect_error t "interp limit s cycles -value 5" in
  check_bool "bad limit type" true
    (contains ~needle:"should be time or commands" msg);
  let msg = expect_error t "interp limit s commands -value -3" in
  check_bool "negative value" true
    (contains ~needle:"non-negative" msg)

let limit_stats_account () =
  let t = new_interp () in
  ignore (run t "interp create s");
  ignore (run t "interp limit s commands -value 25");
  ignore (expect_error t "interp eval s {while 1 {set spin 1}}");
  let stats = Tcl.Interp.limit_stats (slave t "s") in
  let get k = int_of_string (List.assoc k stats) in
  check_bool "checks counted" true (get "checks" > 0);
  check_bool "cmd trip counted" true (get "cmd_exceeded" > 0);
  check_int "no time trip" 0 (get "time_exceeded")

(* ------------------------------------------------------------------ *)
(* Cancellation *)

(* A helper command inside the slave that requests its own cancellation
   mid-script — the single-threaded stand-in for an async signal. *)
let with_cancelling_slave ?unwind t =
  ignore (run t "interp create s");
  let s = slave t "s" in
  Tcl.Interp.register s "trip_cancel" (fun _ _ ->
      Tcl.Interp.cancel ?unwind s;
      (Tcl.Interp.Tcl_ok, ""));
  s

let cancel_stops_runaway () =
  let t = new_interp () in
  let _s = with_cancelling_slave t in
  let msg =
    expect_error t "interp eval s {set n 0; while 1 {incr n; trip_cancel}}"
  in
  check_string "cancelled" "eval canceled" msg

let plain_cancel_is_catchable () =
  let t = new_interp () in
  let _s = with_cancelling_slave t in
  check_string "catch traps plain cancel" "eval canceled"
    (run t "interp eval s {catch {while 1 {trip_cancel}} m; set m}")

let unwind_cancel_is_not_catchable () =
  let t = new_interp () in
  let _s = with_cancelling_slave ~unwind:true t in
  let msg =
    expect_error t "interp eval s {catch {while 1 {trip_cancel}} m; set m}"
  in
  check_string "unwind escapes catch" "eval unwound" msg

let script_level_cancel_is_one_shot () =
  let t = new_interp () in
  ignore (run t "interp create s");
  ignore (run t "interp cancel s");
  let msg = expect_error t "interp eval s {set a 1}" in
  check_string "pending cancel fires" "eval canceled" msg;
  check_string "consumed: next eval runs" "1" (run t "interp eval s {set a 1}")

let cancel_unwind_option () =
  let t = new_interp () in
  ignore (run t "interp create s");
  ignore (run t "interp cancel -unwind s");
  let msg = expect_error t "interp eval s {catch {set a 1} m; set m}" in
  check_string "-unwind through catch" "eval unwound" msg

(* ------------------------------------------------------------------ *)
(* Recursion limits *)

let recursionlimit_get_set () =
  let t = new_interp () in
  check_string "default" "1000" (run t "interp recursionlimit");
  check_string "set self" "50" (run t "interp recursionlimit 50");
  check_string "reads back" "50" (run t "interp recursionlimit");
  ignore (run t "interp create s");
  check_string "set slave" "20" (run t "interp recursionlimit s 20");
  check_string "slave reads back" "20" (run t "interp recursionlimit s");
  check_string "master unchanged" "50" (run t "interp recursionlimit")

let recursionlimit_stops_infinite_recursion () =
  let t = new_interp () in
  ignore (run t "interp create s");
  ignore (run t "interp recursionlimit s 40");
  ignore (run t "interp eval s {proc loop {} {loop}}");
  let msg = expect_error t "interp eval s loop" in
  (* The message proper; proc unwinding appends its traceback lines. *)
  check_bool "overflow message" true
    (contains ~needle:"too many nested evaluations (infinite loop?)" msg);
  (* Depth unwinds fully: the slave keeps working afterwards. *)
  check_string "slave recovered" "fine" (run t "interp eval s {set x fine}")

let deep_but_legal_recursion_still_works () =
  let t = new_interp () in
  ignore (run t "interp recursionlimit 2000");
  ignore (run t "proc count {n} {if {$n <= 0} {return 0}; expr {1 + [count [expr {$n - 1}]]}}");
  check_string "500 deep" "500" (run t "count 500")

(* ------------------------------------------------------------------ *)
(* Guard stats aggregate across the slave tree *)

let stats_shared_down_the_tree () =
  let t = new_interp () in
  ignore (run t "interp create -safe s");
  ignore (run t "interp eval s {catch {exit 1}}");
  (* The master's guard_stats see the slave's denial (shared record). *)
  check_bool "master counts slave denial" true (Tcl.Interp.denied_count t > 0);
  let stats = Tcl.Interp.interp_stats t in
  let get k = int_of_string (List.assoc k stats) in
  check_int "one live slave" 1 (get "slaves");
  check_int "one safe slave" 1 (get "safe_slaves");
  check_bool "creates counted" true (get "creates" >= 1);
  ignore (run t "interp delete s");
  let stats = Tcl.Interp.interp_stats t in
  let get k = int_of_string (List.assoc k stats) in
  check_int "none after delete" 0 (get "slaves");
  check_bool "deletes counted" true (get "deletes" >= 1)

let alias_calls_counted () =
  let t = new_interp () in
  ignore (run t "proc noop {} {}");
  ignore (run t "interp create s");
  ignore (run t "interp alias s n {} noop");
  ignore (run t "interp eval s {n; n; n}");
  let stats = Tcl.Interp.interp_stats t in
  check_int "three alias calls" 3
    (int_of_string (List.assoc "alias_calls" stats))

(* ------------------------------------------------------------------ *)
(* Subcommand surface errors *)

let bad_subcommand_reported () =
  let t = new_interp () in
  let msg = expect_error t "interp creat s" in
  check_bool "misspelled subcommand" true (contains ~needle:"creat" msg)

let to_alcotest = List.map (fun (n, f) -> Alcotest.test_case n `Quick f)

let () =
  Alcotest.run "interp"
    [
      ( "slaves",
        to_alcotest
          [
            ("create/eval/delete", create_eval_delete);
            ("variables are isolated", variables_are_isolated);
            ("auto names", auto_names);
            ("duplicate create fails", duplicate_create_fails);
            ("nested tree, recursive teardown",
             nested_tree_and_recursive_teardown);
            ("delete unknown errors", delete_unknown_errors);
            ("slave errors propagate", slave_errors_propagate);
          ] );
      ( "safety",
        to_alcotest
          [
            ("safe slave denies unsafe commands", safe_slave_denies_unsafe);
            ("denial is catchable", denial_is_catchable);
            ("safe slave cannot escalate", safe_slave_cannot_escalate);
            ("hide/expose roundtrip", hide_expose_roundtrip);
            ("expose under new name", expose_under_new_name);
          ] );
      ( "aliases",
        to_alcotest
          [
            ("alias marshals into master", alias_marshals_into_master);
            ("alias runs in master scope", alias_runs_in_master_scope);
            ("alias into safe slave", alias_into_safe_slave);
          ] );
      ( "limits",
        to_alcotest
          [
            ("command budget kills runaway", command_budget_kills_runaway);
            ("time limit on injected clock", time_limit_on_injected_clock);
            ("trip sticky until rearm", limit_trip_is_sticky_until_rearm);
            ("catch cannot swallow limit", catch_cannot_swallow_limit);
            ("granularity thins clock reads", granularity_thins_clock_reads);
            ("limit bad args", limit_bad_args);
            ("limit stats account", limit_stats_account);
          ] );
      ( "cancel",
        to_alcotest
          [
            ("cancel stops runaway", cancel_stops_runaway);
            ("plain cancel is catchable", plain_cancel_is_catchable);
            ("unwind cancel is not catchable", unwind_cancel_is_not_catchable);
            ("script-level cancel is one-shot", script_level_cancel_is_one_shot);
            ("cancel -unwind option", cancel_unwind_option);
          ] );
      ( "recursion",
        to_alcotest
          [
            ("recursionlimit get/set", recursionlimit_get_set);
            ("stops infinite recursion", recursionlimit_stops_infinite_recursion);
            ("deep but legal recursion works", deep_but_legal_recursion_still_works);
          ] );
      ( "stats",
        to_alcotest
          [
            ("stats shared down the tree", stats_shared_down_the_tree);
            ("alias calls counted", alias_calls_counted);
            ("bad subcommand reported", bad_subcommand_reported);
          ] );
    ]
