(* Wire-traffic observability (ISSUE 3): the per-connection protocol
   trace ring, the metrics registry behind xstat, the paper §7-style
   traffic budgets, and the event-loop bugfix regressions (deadline
   rounding, no-files poll timeout, destroy-then-sweep redraws). *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_app ?(name = "test") () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name () in
  (server, app)

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Read one counter out of an `xstat` Tcl list. *)
let xstat_get app name =
  let listing = run app "xstat" in
  match Tcl.Tcl_list.parse listing with
  | Error msg -> Alcotest.failf "xstat output unparsable: %s" msg
  | Ok words ->
    let rec find = function
      | k :: v :: rest -> if k = name then v else find rest
      | _ -> Alcotest.failf "counter %s missing from xstat" name
    in
    find words

let xstat_int app name =
  match int_of_string_opt (xstat_get app name) with
  | Some i -> i
  | None -> Alcotest.failf "counter %s is not an integer" name

(* ------------------------------------------------------------------ *)
(* The trace ring itself *)

let ring_tests =
  [
    ( "requests are traced with serial, kind and outcome",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"t" in
        Server.set_tracing conn true;
        let w =
          Server.create_window conn ~parent:(Server.root server) ~x:0 ~y:0
            ~width:10 ~height:10 ~border_width:0
        in
        Server.map_window conn w;
        ignore (Server.alloc_color conn "red");
        let records = Server.trace conn in
        check_int "three records" 3 (List.length records);
        let kinds = List.map (fun r -> Server.kind_name r.Trace.kind) records in
        check_bool "window ops then resource" true
          (kinds = [ "window"; "window"; "resource" ]);
        check_bool "all ok" true
          (List.for_all (fun r -> r.Trace.outcome = Trace.Ok) records);
        let serials = List.map (fun r -> r.Trace.serial) records in
        check_bool "serials increase" true (List.sort compare serials = serials)
    );
    ( "tracing off records nothing; clear empties the ring",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"t" in
        ignore (Server.alloc_color conn "red");
        check_int "off: empty" 0 (Server.trace_length conn);
        Server.set_tracing conn true;
        ignore (Server.alloc_color conn "blue");
        check_int "on: one" 1 (Server.trace_length conn);
        Server.clear_trace conn;
        check_int "cleared" 0 (Server.trace_length conn) );
    ( "the ring is bounded and keeps the newest records",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"t" in
        Server.set_tracing ~capacity:16 conn true;
        for _ = 1 to 50 do
          ignore (Server.alloc_color conn "red")
        done;
        check_int "capped at capacity" 16 (Server.trace_length conn);
        let serials =
          List.map (fun r -> r.Trace.serial) (Server.trace conn)
        in
        (* 50 requests; the ring holds the last 16 of them. *)
        check_int "oldest surviving serial" 35 (List.hd serials);
        check_int "newest serial" 50 (List.nth serials 15) );
    ( "injected faults appear with outcome injected-fault",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"t" in
        Server.set_tracing conn true;
        Server.script_fault server Xerror.BadAlloc;
        (match Server.alloc_color conn "red" with
        | _ -> Alcotest.fail "expected X_error"
        | exception Xerror.X_error _ -> ());
        match Server.trace conn with
        | [ r ] ->
          check_string "outcome" "injected-fault"
            (Trace.outcome_name r.Trace.outcome)
        | records -> Alcotest.failf "expected 1 record, got %d" (List.length records)
    );
    ( "absorption upgrades the record to absorbed",
      fun () ->
        let server, app = fresh_app () in
        Server.set_tracing app.Tk.Core.conn true;
        Server.script_fault server Xerror.BadAlloc;
        (* The rescache absorbs the fault and degrades to a fallback. *)
        check_bool "degraded lookup succeeded" true
          (Tk.Rescache.color app.Tk.Core.cache "turquoise" <> None);
        let absorbed =
          List.filter
            (fun r -> r.Trace.outcome = Trace.Absorbed)
            (Server.trace app.Tk.Core.conn)
        in
        check_int "one absorbed record" 1 (List.length absorbed);
        check_bool "no raw injected-fault left" true
          (List.for_all
             (fun r -> r.Trace.outcome <> Trace.Injected_fault)
             (Server.trace app.Tk.Core.conn)) );
    ( "requests on a dead connection are traced as BadConnection",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"t" in
        Server.set_tracing conn true;
        Server.kill_connection conn;
        (match Server.alloc_color conn "red" with
        | _ -> Alcotest.fail "expected X_error"
        | exception Xerror.X_error e ->
          check_string "code" "BadConnection" (Xerror.code_name e.Xerror.code));
        match Server.trace conn with
        | [ r ] ->
          check_string "outcome" "BadConnection"
            (Trace.outcome_name r.Trace.outcome)
        | records -> Alcotest.failf "expected 1 record, got %d" (List.length records)
    );
    ( "trace_dump renders one line per record with the outcome",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"t" in
        Server.set_tracing conn true;
        ignore (Server.alloc_color conn "red");
        Server.script_fault server Xerror.BadMatch;
        (try ignore (Server.alloc_color conn "blue")
         with Xerror.X_error _ -> ());
        let dump = Server.trace_dump conn in
        check_bool "mentions resource class" true (contains ~needle:"resource" dump);
        check_bool "mentions ok" true (contains ~needle:"ok" dump);
        check_bool "mentions injected-fault" true
          (contains ~needle:"injected-fault" dump) );
  ]

(* ------------------------------------------------------------------ *)
(* Paper §7-style traffic budgets through the Tcl commands *)

let budget_tests =
  [
    ( "second button creation costs strictly fewer requests (§3.3)",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "xtrace on");
        ignore (run app "xstat reset");
        ignore (run app "button .b1 -text One");
        ignore (run app "pack append . .b1 {top}");
        ignore (run app "update");
        let first = xstat_int app "requests_total" in
        ignore (run app "xstat reset");
        ignore (run app "button .b2 -text Two");
        ignore (run app "pack append . .b2 {top}");
        ignore (run app "update");
        let second = xstat_int app "requests_total" in
        check_bool
          (Printf.sprintf "second (%d) < first (%d)" second first)
          true (second < first);
        (* The saving is the resource cache: the second button allocates
           no new colors/fonts/GCs at all. *)
        check_int "second button resource allocs" 0
          (xstat_int app "requests_resource");
        check_bool "trace saw the requests" true
          (xstat_int app "trace_records" > 0) );
    ( "creating a button costs a bounded number of requests",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "xstat reset");
        ignore (run app "button .b1 -text One");
        ignore (run app "pack append . .b1 {top}");
        ignore (run app "update");
        let first = xstat_int app "requests_total" in
        (* Window create + configure + map + clear/draws + a handful of
           resource allocs. Generous ceiling: catches regressions that
           chat with the server per option or per redraw. *)
        check_bool (Printf.sprintf "%d <= 40" first) true (first <= 40) );
    ( "cache-off ablation multiplies resource traffic",
      fun () ->
        let requests enabled =
          let _server, app = fresh_app () in
          Tk.Rescache.set_enabled app.Tk.Core.cache enabled;
          ignore (run app "xstat reset");
          for i = 0 to 9 do
            ignore
              (run app
                 (Printf.sprintf
                    "button .b%d -text b%d -foreground black -background \
                     gray75"
                    i i))
          done;
          ignore (run app "update");
          (xstat_int app "requests_resource", xstat_int app "requests_total")
        in
        let on_resource, on_total = requests true in
        let off_resource, off_total = requests false in
        check_bool
          (Printf.sprintf "resource allocs at least double: on=%d off=%d"
             on_resource off_resource)
          true
          (off_resource >= 2 * max 1 on_resource);
        check_bool
          (Printf.sprintf "total requests grow: on=%d off=%d" on_total
             off_total)
          true (off_total > on_total) );
    ( "xtrace dump shows injected faults from Tcl",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "xtrace on");
        Server.script_fault server Xerror.BadAlloc;
        (* A fresh color forces a server request; the cache absorbs the
           fault, so the script level never sees an error. *)
        ignore (run app "button .b -text hi -foreground orange");
        ignore (run app "update");
        let dump = run app "xtrace dump" in
        check_bool "absorbed fault visible in dump" true
          (contains ~needle:"absorbed" dump);
        ignore (run app "xtrace clear");
        check_string "status after clear" "on 0" (run app "xtrace status") );
    ( "xstat reset zeroes the per-app counters",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "button .b -text hi");
        ignore (run app "update");
        check_bool "some requests counted" true
          (xstat_int app "requests_total" > 0);
        ignore (run app "xstat reset");
        check_int "requests zeroed" 0 (xstat_int app "requests_total");
        check_int "redraws zeroed" 0 (xstat_int app "redraws_scheduled") );
  ]

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let metrics_tests =
  [
    ( "redraw coalescing is counted",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "button .b -text hi");
        ignore (run app "pack append . .b {top}");
        ignore (run app "update");
        ignore (run app "xstat reset");
        (* Three reconfigures before the idle sweep: one scheduled redraw,
           two collapsed into it. *)
        let w = Tk.Core.lookup_exn app ".b" in
        Tk.Core.schedule_redraw w;
        Tk.Core.schedule_redraw w;
        Tk.Core.schedule_redraw w;
        Tk.Core.update app;
        check_int "scheduled" 1 (xstat_int app "redraws_scheduled");
        check_int "collapsed" 2 (xstat_int app "redraws_collapsed");
        check_int "drawn" 1 (xstat_int app "redraws_drawn") );
    ( "binding dispatches are counted",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "button .b -text hi");
        ignore (run app "pack append . .b {top}");
        ignore (run app "update");
        ignore (run app "bind .b z {set hit 1}");
        ignore (run app "xstat reset");
        let w = Tk.Core.lookup_exn app ".b" in
        let win = Option.get (Server.lookup_window server w.Tk.Core.win) in
        let p = Window.root_position win in
        Server.inject_motion server ~x:(p.Geom.x + 2) ~y:(p.Geom.y + 2);
        Tk.Core.update app;
        Server.inject_key server ~keysym:"z" ~pressed:true;
        Tk.Core.update app;
        check_string "binding ran" "1" (run app "set hit");
        check_int "one dispatch" 1 (xstat_int app "binding_dispatches") );
    ( "timer and idle sweeps are counted with virtual-clock latency",
      fun () ->
        let disp = Tk.Dispatch.create () in
        let advance = Tk.Dispatch.use_virtual_clock disp in
        Tk.Dispatch.when_idle disp (fun () -> ());
        ignore (Tk.Dispatch.run_idle disp);
        ignore (Tk.Dispatch.after disp ~ms:10 (fun () -> Tk.Dispatch.sleep_ms disp 7));
        advance 10;
        ignore (Tk.Dispatch.run_due_timers disp);
        let c = Tk.Dispatch.counters disp in
        check_int "timers fired" 1 c.Tk.Dispatch.timers_fired;
        check_int "idles run" 1 c.Tk.Dispatch.idles_run;
        check_int "two sweeps" 2 c.Tk.Dispatch.sweeps;
        (* The timer callback slept 7 virtual ms: that is the sweep's
           latency on the pluggable clock, deterministically. *)
        check_bool "sweep latency = 7ms" true
          (abs_float (c.Tk.Dispatch.sweep_ms_last -. 7.0) < 0.001) );
  ]

(* ------------------------------------------------------------------ *)
(* Event-loop bugfix regressions *)

let eventloop_tests =
  [
    ( "next_deadline_ms rounds up instead of truncating to 0",
      fun () ->
        let disp = Tk.Dispatch.create () in
        let now = ref 0.0 in
        Tk.Dispatch.set_clock disp (fun () -> !now);
        ignore (Tk.Dispatch.after disp ~ms:1 (fun () -> ()));
        (* 0.4 ms later the timer is due in 0.6 ms: must report 1, not 0 —
           Some 0 makes the mainloop poll with zero timeout and spin. *)
        now := 0.0004;
        (match Tk.Dispatch.next_deadline_ms disp with
        | Some ms -> check_int "rounded up" 1 ms
        | None -> Alcotest.fail "expected a deadline");
        (* Once overdue it reports 0. *)
        now := 0.002;
        match Tk.Dispatch.next_deadline_ms disp with
        | Some ms -> check_int "overdue" 0 ms
        | None -> Alcotest.fail "expected a deadline" );
    ( "poll_files honors the timeout when no files are registered",
      fun () ->
        let disp = Tk.Dispatch.create () in
        let _advance = Tk.Dispatch.use_virtual_clock disp in
        check_int "t0" 0 (Tk.Dispatch.now_ms disp);
        let fired = Tk.Dispatch.poll_files disp ~timeout:0.02 in
        check_int "nothing fired" 0 fired;
        (* The virtual sleeper advanced the clock by the full timeout:
           the no-files path slept instead of returning immediately. *)
        check_int "slept 20 virtual ms" 20 (Tk.Dispatch.now_ms disp) );
    ( "a widget destroyed between scheduling and the idle sweep is not drawn",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "button .b -text hi");
        ignore (run app "pack append . .b {top}");
        ignore (run app "update");
        ignore (run app "xstat reset");
        let w = Tk.Core.lookup_exn app ".b" in
        Tk.Core.schedule_redraw w;
        (* Destroy after scheduling, before the sweep runs. *)
        ignore (run app "destroy .b");
        Tk.Core.update app;
        check_int "redraw was skipped" 1
          (xstat_int app "redraws_skipped_dead");
        check_int "nothing drawn for it" 0 (xstat_int app "redraws_drawn");
        check_bool "app alive" true (not app.Tk.Core.app_destroyed) );
    ( "connect is O(1): many connections stay usable and reap cleanly",
      fun () ->
        let server = Server.create () in
        let conns =
          List.init 200 (fun i ->
              Server.connect server ~name:(Printf.sprintf "c%d" i))
        in
        (* Each creates a window; survivors hear about a peer's death. *)
        let wins =
          List.map
            (fun c ->
              Server.create_window c ~parent:(Server.root server) ~x:0 ~y:0
                ~width:5 ~height:5 ~border_width:0)
            conns
        in
        ignore wins;
        let victim = List.nth conns 100 in
        Server.kill_connection victim;
        check_bool "victim dead" false (Server.connection_alive victim);
        let survivor = List.nth conns 0 in
        check_bool "survivor got DestroyNotify" true
          (Server.pending survivor > 0);
        check_bool "survivor still works" true
          (Server.window_exists survivor (Server.root server)) );
  ]

let suite name tests =
  (name, List.map (fun (doc, f) -> Alcotest.test_case doc `Quick f) tests)

let () =
  Alcotest.run "trace"
    [
      suite "ring" ring_tests;
      suite "budget" budget_tests;
      suite "metrics" metrics_tests;
      suite "eventloop" eventloop_tests;
    ]
