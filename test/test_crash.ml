(* The client crash lifecycle (ROADMAP: robustness). A peer that dies or
   hangs mid-request must surface as a clean, bounded error, never a hung
   event loop. Exercises Server.kill_connection and the "die at request
   N" crash plan, Server.close reaping semantics, the hardened send RPC
   (deadline wait on the dispatcher clock, liveness ping, distinct
   died/timed-out errors), registry ghost collection, and selection-owner
   death — all under a deterministic virtual clock. *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let expect_error app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> Alcotest.failf "script %S unexpectedly returned %S" script v
  | Error msg -> msg

(* Two registered interpreters on one display, quiesced so the next
   server request is the one the test provokes. *)
let fresh_pair () =
  let server = Server.create () in
  let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
  let b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
  Tk.Core.update_all server;
  (server, a, b)

let new_window conn parent =
  Server.create_window conn ~parent ~x:0 ~y:0 ~width:20 ~height:20
    ~border_width:0

let drain conn =
  let rec go acc =
    match Server.next_event conn with
    | Some d -> go (d :: acc)
    | None -> List.rev acc
  in
  go []

let has_event events ~window pred =
  List.exists
    (fun (d : Event.delivery) -> d.Event.window = window && pred d.Event.event)
    events

(* Make the peer deaf: its interpreter stays alive but it never again
   answers sends or selection conversions. *)
let hang app = app.Tk.Core.pre_handlers <- []

(* ------------------------------------------------------------------ *)
(* Server-level crash lifecycle *)

let kill_tests =
  [
    ( "kill_connection reaps windows and rejects further requests",
      fun () ->
        let server = Server.create () in
        let a = Server.connect server ~name:"victim" in
        let b = Server.connect server ~name:"survivor" in
        let wa = new_window a (Server.root server) in
        let wa_child = new_window a wa in
        let wb = new_window b (Server.root server) in
        Server.kill_connection a;
        check_bool "own top gone" true (Server.lookup_window server wa = None);
        check_bool "own child gone" true
          (Server.lookup_window server wa_child = None);
        check_bool "survivor window alive" true
          (Server.lookup_window server wb <> None);
        check_bool "dead" false (Server.connection_alive a);
        check_bool "marked crashed" true (Server.connection_crashed a);
        check_bool "survivor alive" true (Server.connection_alive b);
        (match Server.alloc_color a "red" with
        | _ -> Alcotest.fail "expected an X_error"
        | exception Xerror.X_error e ->
          check_string "code" "BadConnection" (Xerror.code_name e.Xerror.code));
        (* Killing twice is harmless. *)
        Server.kill_connection a );
    ( "survivors receive DestroyNotify for a crashed client's windows",
      fun () ->
        let server = Server.create () in
        let a = Server.connect server ~name:"victim" in
        let b = Server.connect server ~name:"survivor" in
        let wa = new_window a (Server.root server) in
        (* A survivor window nested inside the dying client's tree. *)
        let nested = new_window b wa in
        ignore (drain b);
        Server.kill_connection a;
        let events = drain b in
        check_bool "nested window destroyed with the subtree" true
          (Server.lookup_window server nested = None);
        check_bool "DestroyNotify for the nested survivor window" true
          (has_event events ~window:nested (fun e -> e = Event.Destroy_notify));
        check_bool "DestroyNotify broadcast for the dead top-level" true
          (has_event events ~window:wa (fun e -> e = Event.Destroy_notify)) );
    ( "crash plan kills the connection exactly at request N",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"doomed" in
        let base = (Server.stats conn).Server.total_requests in
        Server.set_crash_plan conn ~at_request:(base + 3);
        check_int "armed" (base + 3) (Server.crash_plan conn);
        check_bool "request 1 fine" true (Server.alloc_color conn "red" <> None);
        check_bool "request 2 fine" true (Server.alloc_color conn "blue" <> None);
        (match Server.alloc_color conn "green" with
        | _ -> Alcotest.fail "expected the crash at request 3"
        | exception Xerror.X_error e ->
          check_string "code" "BadConnection" (Xerror.code_name e.Xerror.code));
        check_bool "dead afterwards" false (Server.connection_alive conn);
        check_bool "crashed, not closed" true (Server.connection_crashed conn) );
    ( "close reaps windows, clears selections, notifies survivors",
      fun () ->
        let server = Server.create () in
        let survivor = Server.connect server ~name:"survivor" in
        let closing = Server.connect server ~name:"closing" in
        let w = new_window closing (Server.root server) in
        Server.set_selection_owner closing ~selection:Atom.primary w;
        ignore (drain survivor);
        Server.close closing;
        check_bool "window destroyed" true (Server.lookup_window server w = None);
        check_int "selection cleared" Xid.none
          (Server.get_selection_owner survivor ~selection:Atom.primary);
        let events = drain survivor in
        check_bool "survivor saw the DestroyNotify" true
          (has_event events ~window:w (fun e -> e = Event.Destroy_notify));
        check_bool "survivor saw the SelectionClear" true
          (has_event events ~window:w (function
            | Event.Selection_clear { selection } -> selection = Atom.primary
            | _ -> false));
        check_bool "closed, not crashed" false (Server.connection_crashed closing) );
    ( "a pending selection conversion is refused when the owner dies",
      fun () ->
        let server = Server.create () in
        let owner = Server.connect server ~name:"owner" in
        let requestor = Server.connect server ~name:"requestor" in
        let wo = new_window owner (Server.root server) in
        let wr = new_window requestor (Server.root server) in
        Server.set_selection_owner owner ~selection:Atom.primary wo;
        let prop = Server.intern_atom requestor "RESULT" in
        Server.convert_selection requestor ~selection:Atom.primary
          ~target:Atom.string ~property:prop ~requestor:wr;
        ignore (drain requestor);
        (* The owner received the SelectionRequest but dies before
           answering: the requestor must be unblocked with a refusal. *)
        Server.kill_connection owner;
        let events = drain requestor in
        check_bool "refusing SelectionNotify delivered" true
          (has_event events ~window:wr (function
            | Event.Selection_notify n -> n.Event.sn_property = None
            | _ -> false)) );
  ]

(* ------------------------------------------------------------------ *)
(* The hardened send RPC *)

let send_tests =
  [
    ( "killing the peer mid-send yields a died error within the deadline",
      fun () ->
        let server, a, b = fresh_pair () in
        ignore (Tk.Dispatch.use_virtual_clock a.Tk.Core.disp : int -> unit);
        (* The peer crashes on its very next request — which is the one it
           makes while picking up the incoming send. *)
        Server.set_crash_plan b.Tk.Core.conn
          ~at_request:((Server.stats b.Tk.Core.conn).Server.total_requests + 1);
        let msg = expect_error a "send beta set x 1" in
        check_bool "reported as died" true (contains ~needle:"died" msg);
        check_bool "not reported as a timeout" false
          (contains ~needle:"timed out" msg);
        check_bool "well before the deadline" true
          (Tk.Dispatch.now_ms a.Tk.Core.disp < Tk.Sendcmd.default_timeout_ms);
        check_bool "peer connection dead" false
          (Server.connection_alive b.Tk.Core.conn);
        ignore server );
    ( "send to a hung peer times out with a distinct error",
      fun () ->
        let _server, a, b = fresh_pair () in
        ignore (Tk.Dispatch.use_virtual_clock a.Tk.Core.disp : int -> unit);
        hang b;
        (match Tk.Sendcmd.send ~timeout_ms:400 a ~target:"beta" "set x 1" with
        | Ok v -> Alcotest.failf "hung peer unexpectedly answered %S" v
        | Error msg ->
          check_bool "reported as timed out" true
            (contains ~needle:"timed out" msg);
          check_bool "not reported as died" false (contains ~needle:"died" msg));
        check_bool "deadline consumed on the virtual clock" true
          (Tk.Dispatch.now_ms a.Tk.Core.disp >= 400);
        check_bool "peer still alive" true
          (Server.connection_alive b.Tk.Core.conn) );
    ( "Tcl-level send to a hung peer reports the timeout",
      fun () ->
        let _server, a, b = fresh_pair () in
        ignore (Tk.Dispatch.use_virtual_clock a.Tk.Core.disp : int -> unit);
        hang b;
        let msg = expect_error a "send beta set x 1" in
        check_bool "timed out" true (contains ~needle:"timed out" msg) );
    ( "send still works between live peers under the deadline machinery",
      fun () ->
        let _server, a, _b = fresh_pair () in
        ignore (Tk.Dispatch.use_virtual_clock a.Tk.Core.disp : int -> unit);
        check_string "round trip" "42" (run a "send beta expr 41+1");
        (* An answered send never sleeps: the clock did not move. *)
        check_int "no time consumed" 0 (Tk.Dispatch.now_ms a.Tk.Core.disp) );
  ]

(* ------------------------------------------------------------------ *)
(* Registry hygiene: winfo interps is ghost-free *)

let registry_tests =
  [
    ( "a crashed peer vanishes from winfo interps",
      fun () ->
        let _server, a, b = fresh_pair () in
        check_bool "listed while alive" true
          (contains ~needle:"beta" (run a "winfo interps"));
        Server.kill_connection b.Tk.Core.conn;
        let interps = run a "winfo interps" in
        check_bool "ghost-free" false (contains ~needle:"beta" interps);
        check_bool "survivor still listed" true
          (contains ~needle:"alpha" interps) );
    ( "a forged ghost entry in the raw property is collected on read",
      fun () ->
        let _server, a, _b = fresh_pair () in
        (* Bypass write_registry's filtering: append a ghost entry to the
           raw root-window shard property "ghost" hashes to, as a
           crashed-without-cleanup peer would leave behind. *)
        let conn = a.Tk.Core.conn in
        let root = Server.root a.Tk.Core.server in
        let prop =
          Server.intern_atom conn
            (Tk.Core.registry_shard_property (Tk.Core.shard_of_name "ghost"))
        in
        let raw =
          match Server.get_property conn root ~prop with
          | Some p -> p.Window.prop_data
          | None -> ""
        in
        Server.change_property conn root ~prop ~ptype:Atom.string
          (raw ^ " {ghost 424242}");
        check_bool "ghost never listed" false
          (List.mem "ghost" (Tk.Sendcmd.interps a));
        (* The read garbage-collected the property itself. *)
        (match Server.get_property conn root ~prop with
        | Some p ->
          check_bool "property rewritten without the ghost" false
            (contains ~needle:"ghost" p.Window.prop_data)
        | None -> Alcotest.fail "registry property vanished") );
    ( "write_registry refuses to persist ghost entries",
      fun () ->
        let _server, a, _b = fresh_pair () in
        let entries = Tk.Core.read_registry a in
        Tk.Core.write_registry a (entries @ [ ("ghost", 999999) ]);
        check_bool "ghost filtered on write" false
          (List.mem_assoc "ghost" (Tk.Core.read_registry a)) );
  ]

(* ------------------------------------------------------------------ *)
(* Selection-owner death *)

let selection_tests =
  [
    ( "selection get fails cleanly when the owner was killed",
      fun () ->
        let _server, a, b = fresh_pair () in
        Tk.Selection.own (Tk.Core.main_widget b) ~provider:(fun () -> "payload");
        check_string "works while owner lives" "payload" (run a "selection get");
        Server.kill_connection b.Tk.Core.conn;
        let msg = expect_error a "selection get" in
        check_bool "clean Tcl error" true
          (contains ~needle:"PRIMARY selection" msg);
        check_int "ownership cleared server-side" Xid.none
          (Server.get_selection_owner a.Tk.Core.conn ~selection:Atom.primary) );
    ( "selection get from a hung owner times out and clears ownership",
      fun () ->
        let _server, a, b = fresh_pair () in
        ignore (Tk.Dispatch.use_virtual_clock a.Tk.Core.disp : int -> unit);
        Tk.Selection.own (Tk.Core.main_widget b) ~provider:(fun () -> "payload");
        Tk.Core.update_all a.Tk.Core.server;
        hang b;
        (match Tk.Selection.get ~timeout_ms:300 a with
        | v -> Alcotest.failf "hung owner unexpectedly answered %S" v
        | exception Tcl.Interp.Tcl_failure msg ->
          check_bool "reports the timeout" true
            (contains ~needle:"timed out" msg));
        check_bool "deadline consumed on the virtual clock" true
          (Tk.Dispatch.now_ms a.Tk.Core.disp >= 300);
        (* The dangling ownership was cleared so the next request fails
           fast instead of repeating the timeout. *)
        check_int "ownership cleared server-side" Xid.none
          (Server.get_selection_owner a.Tk.Core.conn ~selection:Atom.primary);
        let msg = expect_error a "selection get" in
        check_bool "fails fast afterwards" true
          (contains ~needle:"PRIMARY selection" msg) );
    ( "owner window destroyed mid-conversion is detected as dead",
      fun () ->
        let _server, a, b = fresh_pair () in
        ignore (Tk.Dispatch.use_virtual_clock a.Tk.Core.disp : int -> unit);
        (* Own via a subordinate window of a hung app, and schedule that
           window's destruction on the owner's timer queue: it fires
           inside [get]'s first event-loop pump, i.e. after the
           conversion has started, so the requestor's mid-wait owner ping
           is what notices the window is gone — well before the
           deadline. *)
        ignore (run b "frame .f -width 10 -height 10");
        Tk.Core.update_all a.Tk.Core.server;
        let fw = Tk.Core.lookup_exn b ".f" in
        Tk.Selection.own fw ~provider:(fun () -> "payload");
        ignore (run b "after 0 {destroy .f}");
        hang b;
        (match Tk.Selection.get ~timeout_ms:1000 a with
        | v -> Alcotest.failf "dead owner unexpectedly answered %S" v
        | exception Tcl.Interp.Tcl_failure msg ->
          check_bool "reports the death" true (contains ~needle:"died" msg));
        check_bool "well before the deadline" true
          (Tk.Dispatch.now_ms a.Tk.Core.disp < 1000) );
  ]

(* ------------------------------------------------------------------ *)
(* Deterministic clock plumbing *)

let clock_tests =
  [
    ( "use_virtual_clock drives after-timers deterministically",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"clock" () in
        let advance = Tk.Dispatch.use_virtual_clock a.Tk.Core.disp in
        ignore (run a "set fired 0; after 100 {set fired 1}");
        Tk.Core.update a;
        check_string "not yet" "0" (run a "set fired");
        advance 99;
        Tk.Core.update a;
        check_string "still not due" "0" (run a "set fired");
        advance 1;
        Tk.Core.update a;
        check_string "fires exactly on the deadline" "1" (run a "set fired") );
    ( "sleep_ms advances a virtual clock instead of blocking",
      fun () ->
        let d = Tk.Dispatch.create () in
        ignore (Tk.Dispatch.use_virtual_clock d : int -> unit);
        check_int "starts at zero" 0 (Tk.Dispatch.now_ms d);
        Tk.Dispatch.sleep_ms d 250;
        check_int "advanced" 250 (Tk.Dispatch.now_ms d) );
  ]

let suite name tests =
  (name, List.map (fun (doc, f) -> Alcotest.test_case doc `Quick f) tests)

let () =
  Alcotest.run "crash"
    [
      suite "kill" kill_tests;
      suite "send" send_tests;
      suite "registry" registry_tests;
      suite "selection" selection_tests;
      suite "clock" clock_tests;
    ]
