(* Tests for the Tcl substrate: parser, substitution, control flow,
   procedures, expressions, lists, strings, introspection. *)

let new_interp () = Tcl.Builtins.new_interp ()

(* Evaluate and expect success. *)
let run tcl script =
  match Tcl.Interp.eval_value tcl script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let run_fresh script = run (new_interp ()) script

let expect_error tcl script =
  match Tcl.Interp.eval_value tcl script with
  | Ok v -> Alcotest.failf "script %S unexpectedly succeeded with %S" script v
  | Error msg -> msg

let check_eval ?interp script expected () =
  let tcl = match interp with Some t -> t | None -> new_interp () in
  Alcotest.(check string) script expected (run tcl script)

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Figures 1-5: syntax *)

let syntax_tests =
  [
    ("simple command (Fig 1)", check_eval "set a 1000" "1000");
    ("semicolon separates commands (Fig 1)",
     check_eval "set a 1; set b 2; set a" "1");
    ("newline separates commands", check_eval "set a 1\nset b 2\nset b" "2");
    ("double quotes group (Fig 2)", check_eval {|set msg "Hello, world"|} "Hello, world");
    ("braces group (Fig 2)", check_eval "set x {a b {x1 x2}}" "a b {x1 x2}");
    ("braces suppress substitution", check_eval {|set a 5; set b {$a}|} "$a");
    ("quotes allow substitution", check_eval {|set a 5; set b "$a!"|} "5!");
    ("dollar substitution (Fig 3)", check_eval "set msg hi; set x $msg" "hi");
    ("braced variable name", check_eval "set ab 7; set x ${ab}" "7");
    ("bracket substitution (Fig 4)",
     check_eval "set x [set y 42]" "42");
    ("nested bracket substitution",
     check_eval "set x [set y [set z 9]]" "9");
    ("bracket result spliced into word",
     check_eval "set y 5; set x a[set y]b" "a5b");
    ("backslash escapes dollar (Fig 5)", check_eval {|set x \$a|} "$a");
    ("backslash newline in command",
     check_eval "set x \\\n 77" "77");
    ("backslash n", check_eval {|set x a\nb|} "a\nb");
    ("backslash hex", check_eval {|set x \x41|} "A");
    ("backslash octal", check_eval {|set x \101|} "A");
    ("comment at command start", check_eval "# a comment\nset x 3" "3");
    ("semicolon inside braces is literal",
     check_eval "set x {a;b}" "a;b");
    ("lone dollar is literal", check_eval "set x a$; set x" "a$");
    ("empty script yields empty", check_eval "" "");
    ("whitespace-only script", check_eval "  \n\t " "");
    ("array element set/get", check_eval "set a(1) x; set a(1)" "x");
    ("array index substitution",
     check_eval "set i 3; set a(3) v; set x $a($i)" "v");
    ("command substitution in array index",
     check_eval "set a(5) w; set x $a([expr 2+3])" "w");
  ]

let syntax_error_tests =
  [
    ( "missing close brace",
      fun () ->
        let msg = expect_error (new_interp ()) "set x {abc" in
        Alcotest.(check bool) "mentions brace" true (contains ~needle:"brace" msg) );
    ( "missing close quote",
      fun () ->
        let msg = expect_error (new_interp ()) "set x \"abc" in
        Alcotest.(check bool) "mentions quote" true (contains ~needle:"quote" msg) );
    ( "extra chars after brace",
      fun () ->
        let msg = expect_error (new_interp ()) "set x {a}b" in
        Alcotest.(check bool) "mentions extra" true (contains ~needle:"extra" msg) );
    ( "unknown command",
      fun () ->
        let msg = expect_error (new_interp ()) "definitely_not_a_command" in
        Alcotest.(check bool) "invalid command" true
          (contains ~needle:"invalid command name" msg) );
    ( "unset variable read",
      fun () ->
        let msg = expect_error (new_interp ()) "set x $nope" in
        Alcotest.(check bool) "can't read" true (contains ~needle:"can't read" msg) );
  ]

(* ------------------------------------------------------------------ *)
(* Control flow *)

let control_tests =
  [
    ("if true branch", check_eval "if 1 {set x yes} {set x no}" "yes");
    ("if false branch", check_eval "if 0 {set x yes} {set x no}" "no");
    ("if with then/else keywords",
     check_eval "if 0 then {set x a} else {set x b}" "b");
    ("if elseif chain",
     check_eval "set i 2; if {$i == 1} {set x a} elseif {$i == 2} {set x b} else {set x c}" "b");
    ("if with expression (Fig 3)",
     check_eval "set i 1; if $i<2 {set j 43}; set j" "43");
    ("if no else, false", check_eval "if 0 {set x y}" "");
    ("while loop", check_eval "set i 0; while {$i < 5} {incr i}; set i" "5");
    ("while with break",
     check_eval "set i 0; while 1 {incr i; if {$i >= 3} {break}}; set i" "3");
    ("while with continue",
     check_eval
       "set i 0; set n 0; while {$i < 5} {incr i; if {$i == 2} {continue}; incr n}; set n"
       "4");
    ("for loop",
     check_eval "set s 0; for {set i 1} {$i <= 4} {incr i} {incr s $i}; set s" "10");
    ("foreach", check_eval "set s x; foreach i {a b c} {append s $i}; set s" "xabc");
    ("foreach with braced elements",
     check_eval "set n 0; foreach i {a {b c} d} {incr n}; set n" "3");
    ("nested loops and break",
     check_eval
       "set n 0; foreach i {1 2 3} {foreach j {1 2 3} {if {$j == 2} break; incr n}}; set n"
       "3");
    ("catch ok is 0", check_eval "catch {set x 1}" "0");
    ("catch error is 1", check_eval "catch {error boom}" "1");
    ("catch stores message",
     check_eval "catch {error boom} msg; set msg" "boom");
    ("catch break is 3", check_eval "catch {break}" "3");
    ("catch return is 2", check_eval "catch {return abc}" "2");
    ("error propagates",
     fun () ->
       let msg = expect_error (new_interp ()) "if 1 {error deep}" in
       Alcotest.(check bool) "msg" true (contains ~needle:"deep" msg));
    ("eval concatenates args", check_eval "eval set x 5; set x" "5");
    ("eval a built script",
     check_eval "set cmd {set y 12}; eval $cmd; set y" "12");
    ("errorInfo records a stack trace",
     fun () ->
       let tcl = new_interp () in
       ignore (expect_error tcl "proc deep {} {error kaboom}\nproc mid {} {deep}\nmid");
       let info = run tcl "set errorInfo" in
       Alcotest.(check bool) "has message" true (contains ~needle:"kaboom" info);
       Alcotest.(check bool) "has while-executing" true
         (contains ~needle:"while executing" info);
       Alcotest.(check bool) "mentions deep" true (contains ~needle:"deep" info));
    ("errorInfo resets on a new error",
     fun () ->
       let tcl = new_interp () in
       ignore (expect_error tcl "error first");
       ignore (expect_error tcl "error second");
       let info = run tcl "set errorInfo" in
       Alcotest.(check bool) "second error" true (contains ~needle:"second" info);
       Alcotest.(check bool) "first gone" false (contains ~needle:"first" info));
    ("catch marks the error handled",
     check_eval "catch {error inner}; set x after; set x" "after");
    ("catch leaves errorInfo readable",
     fun () ->
       let tcl = new_interp () in
       ignore (run tcl "proc deep {} {error kapow}\ncatch {deep}");
       let info = run tcl "set errorInfo" in
       Alcotest.(check bool) "has message" true (contains ~needle:"kapow" info);
       Alcotest.(check bool) "has while-executing" true
         (contains ~needle:"while executing" info));
    ("info errorinfo returns the stack trace",
     fun () ->
       let tcl = new_interp () in
       Alcotest.(check string) "empty before any error" ""
         (run tcl "info errorinfo");
       ignore (run tcl "catch {error whammo}");
       let info = run tcl "info errorinfo" in
       Alcotest.(check bool) "matches the variable" true
         (info = run tcl "set errorInfo");
       Alcotest.(check bool) "has message" true
         (contains ~needle:"whammo" info));
  ]

(* ------------------------------------------------------------------ *)
(* Procedures, scopes *)

let proc_tests =
  [
    ("simple proc", check_eval "proc double {x} {expr $x * 2}; double 21" "42");
    ("proc implicit return value",
     check_eval "proc f {} {set a 1; set b 2}; f" "2");
    ("proc explicit return",
     check_eval "proc f {} {return early; set x late}; f" "early");
    ("proc default argument",
     check_eval "proc greet {{who world}} {return hi-$who}; greet" "hi-world");
    ("proc default overridden",
     check_eval "proc greet {{who world}} {return hi-$who}; greet tcl" "hi-tcl");
    ("proc args collector",
     check_eval "proc count {args} {llength $args}; count a b c d" "4");
    ("proc args empty", check_eval "proc count {args} {llength $args}; count" "0");
    ("locals do not leak",
     check_eval "set x outer; proc f {} {set x inner}; f; set x" "outer");
    ("global links variables",
     check_eval "set g 1; proc f {} {global g; set g 2}; f; set g" "2");
    ("upvar modifies caller's variable",
     check_eval
       "proc bump {name} {upvar $name v; incr v}; set n 7; bump n; set n" "8");
    ("upvar two levels",
     check_eval
       "proc outer {} {set local 5; inner; return $local}\n\
        proc inner {} {upvar 1 local x; incr x 10}\n\
        outer"
       "15");
    ("uplevel executes in caller scope",
     check_eval
       "proc setter {} {uplevel {set z 99}}; proc caller {} {setter; set z}; caller"
       "99");
    ("uplevel #0 reaches global",
     check_eval "proc f {} {uplevel #0 {set gg 5}}; f; set gg" "5");
    ("recursion: factorial",
     check_eval
       "proc fact {n} {if {$n <= 1} {return 1}; expr {$n * [fact [expr $n-1]]}}; fact 6"
       "720");
    ("recursion: fibonacci",
     check_eval
       "proc fib {n} {if {$n < 2} {return $n}; expr {[fib [expr $n-1]] + [fib [expr $n-2]]}}; fib 10"
       "55");
    ("too few arguments",
     fun () ->
       let msg = expect_error (new_interp ()) "proc f {a b} {}; f 1" in
       Alcotest.(check bool) "msg" true (contains ~needle:"no value given" msg));
    ("too many arguments",
     fun () ->
       let msg = expect_error (new_interp ()) "proc f {a} {}; f 1 2" in
       Alcotest.(check bool) "msg" true (contains ~needle:"too many" msg));
    ("rename proc",
     check_eval "proc f {} {return ok}; rename f g; g" "ok");
    ("rename to empty deletes",
     fun () ->
       let tcl = new_interp () in
       ignore (run tcl "proc f {} {return ok}; rename f {}");
       let msg = expect_error tcl "f" in
       Alcotest.(check bool) "deleted" true
         (contains ~needle:"invalid command name" msg));
    ("unknown handler invoked",
     check_eval
       "proc unknown {args} {return handled:[lindex $args 0]}; nosuchcmd x y"
       "handled:nosuchcmd");
    ("infinite recursion is caught",
     fun () ->
       let msg = expect_error (new_interp ()) "proc f {} {f}; f" in
       Alcotest.(check bool) "nested" true (contains ~needle:"nested" msg));
  ]

(* ------------------------------------------------------------------ *)
(* Expressions *)

let expr_case script expected = (script, check_eval script expected)

let expr_tests =
  List.map
    (fun (s, e) -> expr_case ("expr {" ^ s ^ "}") e)
    [
      ("1 + 2", "3");
      ("10 - 4 - 3", "3");
      ("2 + 3 * 4", "14");
      ("(2 + 3) * 4", "20");
      ("7 / 2", "3");
      ("-7 / 2", "-4");
      ("7 % 3", "1");
      ("-7 % 3", "2");
      ("1 << 4", "16");
      ("256 >> 2", "64");
      ("5 & 3", "1");
      ("5 | 3", "7");
      ("5 ^ 3", "6");
      ("~0", "-1");
      ("!0", "1");
      ("!5", "0");
      ("1 && 0", "0");
      ("1 || 0", "1");
      ("0 || 0", "0");
      ("1 < 2", "1");
      ("2 <= 2", "1");
      ("3 > 4", "0");
      ("3 >= 3", "1");
      ("3 == 3", "1");
      ("3 != 3", "0");
      ("1 ? 10 : 20", "10");
      ("0 ? 10 : 20", "20");
      ("1.5 + 1.5", "3.0");
      ("1.0 / 4", "0.25");
      ("2 < 10", "1");
      ("\"abc\" == \"abc\"", "1");
      ("\"abc\" < \"abd\"", "1");
      ("abs(-5)", "5");
      ("int(3.7)", "3");
      ("round(3.7)", "4");
      ("double(2)", "2.0");
      ("sqrt(16.0)", "4.0");
      ("pow(2, 10)", "1024.0");
      ("0x10 + 1", "17");
      ("1e2 + 1", "101.0");
    ]
  @ [
      ("expr with variables",
       check_eval "set a 4; set b 3; expr {$a * $b}" "12");
      ("expr with command substitution",
       check_eval "proc five {} {return 5}; expr {[five] + 1}" "6");
      ("expr unbraced gets double substitution",
       check_eval "set a 2; expr $a+$a" "4");
      ("short-circuit && skips command",
       check_eval "set n 0; proc bump {} {global n; incr n}; expr {0 && [bump]}; set n" "0");
      ("short-circuit || skips command",
       check_eval "set n 0; proc bump {} {global n; incr n}; expr {1 || [bump]}; set n" "0");
      ("divide by zero",
       fun () ->
         let msg = expect_error (new_interp ()) "expr {1 / 0}" in
         Alcotest.(check bool) "msg" true (contains ~needle:"divide by zero" msg));
      ("ternary chooses lazily-parsed branch",
       check_eval "expr {1 ? 2 : 3}" "2");
      ("boolean words", check_eval "expr {true && !false}" "1");
    ]

(* ------------------------------------------------------------------ *)
(* Lists *)

let list_tests =
  [
    ("list builds quoted list", check_eval "list a {b c} d" "a {b c} d");
    ("list quotes empty element", check_eval "list a {} b" "a {} b");
    ("list quotes spaces", check_eval {|list "x y"|} "{x y}");
    ("lindex", check_eval "lindex {a b c} 1" "b");
    ("lindex end", check_eval "lindex {a b c} end" "c");
    ("lindex out of range", check_eval "lindex {a b c} 9" "");
    ("lindex negative index", check_eval "lindex {a b c} -1" "");
    ("lrange inverted bounds", check_eval "lrange {a b c} 2 0" "");
    ("llength", check_eval "llength {a {b c} d}" "3");
    ("llength empty", check_eval "llength {}" "0");
    ("lrange", check_eval "lrange {a b c d e} 1 3" "b c d");
    ("lrange end", check_eval "lrange {a b c d} 2 end" "c d");
    ("lappend creates", check_eval "lappend l a b; set l" "a b");
    ("lappend extends", check_eval "set l {x}; lappend l y z" "x y z");
    ("lappend quotes", check_eval "lappend l {a b}; set l" "{a b}");
    ("linsert", check_eval "linsert {a c} 1 b" "a b c");
    ("linsert at end", check_eval "linsert {a b} end x" "a x b");
    ("lreplace", check_eval "lreplace {a b c d} 1 2 X Y Z" "a X Y Z d");
    ("lreplace delete", check_eval "lreplace {a b c} 1 1" "a c");
    ("lsearch found", check_eval "lsearch {a b c} b" "1");
    ("lsearch missing", check_eval "lsearch {a b c} z" "-1");
    ("lsearch glob", check_eval "lsearch {foo bar baz} b*" "1");
    ("lsearch exact", check_eval "lsearch -exact {foo b* bar} b*" "1");
    ("lsort ascii", check_eval "lsort {banana apple cherry}" "apple banana cherry");
    ("lsort integer", check_eval "lsort -integer {10 9 100 1}" "1 9 10 100");
    ("lsort decreasing", check_eval "lsort -decreasing {a c b}" "c b a");
    ("lsort real", check_eval "lsort -real {2.5 1.5 10.25}" "1.5 2.5 10.25");
    ("concat", check_eval "concat a {b c} { d }" "a b c d");
    ("split default", check_eval "split {a b  c}" "a b {} c");
    ("split on char", check_eval "split a:b:c :" "a b c");
    ("split every char", check_eval "split abc {}" "a b c");
    ("join default", check_eval "join {a b c}" "a b c");
    ("join with sep", check_eval "join {a b c} -" "a-b-c");
    ("legacy index alias (Fig 9)", check_eval "index {x y z} 0" "x");
    ("nested list extraction",
     check_eval "lindex [lindex {a {b c} d} 1] 1" "c");
  ]

(* Property: format/parse round-trip. *)
let list_roundtrip =
  QCheck.Test.make ~name:"tcl list format/parse roundtrip" ~count:500
    QCheck.(small_list (string_gen_of_size (Gen.int_bound 8) Gen.printable))
    (fun elements ->
      match Tcl.Tcl_list.parse (Tcl.Tcl_list.format elements) with
      | Ok parsed -> parsed = elements
      | Error _ -> false)

let quote_element_roundtrip =
  QCheck.Test.make ~name:"quote_element embeds any single element" ~count:500
    QCheck.(string_gen_of_size (Gen.int_bound 20) Gen.printable)
    (fun e ->
      match Tcl.Tcl_list.parse (Tcl.Tcl_list.quote_element e) with
      | Ok [ e' ] -> e' = e
      | Ok [] -> e = "" (* impossible: quote wraps empties in braces *)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Strings, format, scan *)

let string_tests =
  [
    ("string length", check_eval "string length hello" "5");
    ("string index", check_eval "string index hello 1" "e");
    ("string index end", check_eval "string index hello end" "o");
    ("string range", check_eval "string range hello 1 3" "ell");
    ("string range end", check_eval "string range hello 2 end" "llo");
    ("string compare equal", check_eval "string compare abc abc" "0");
    ("string compare less", check_eval "string compare abc abd" "-1");
    ("string match star", check_eval "string match *.c foo.c" "1");
    ("string match question", check_eval "string match a?c abc" "1");
    ("string match set", check_eval "string match {[a-c]x} bx" "1");
    ("string match no", check_eval "string match *.c foo.h" "0");
    ("string tolower", check_eval "string tolower ABC" "abc");
    ("string toupper", check_eval "string toupper abc" "ABC");
    ("string trim", check_eval "string trim {  hi  }" "hi");
    ("string trimleft", check_eval "string trimleft xxhix x" "hix");
    ("string first", check_eval "string first lo hello" "3");
    ("string last", check_eval "string last l hello" "3");
    ("format %s (Fig 4)", check_eval {|format "x is %s" 4|} "x is 4");
    ("format %d", check_eval "format %d 42" "42");
    ("format width", check_eval "format %5d 42" "   42");
    ("format left align", check_eval "format %-5d| 42" "42   |");
    ("format zero pad", check_eval "format %05d 42" "00042");
    ("format hex", check_eval "format %x 255" "ff");
    ("format HEX alt", check_eval "format %#X 255" "0xFF");
    ("format float", check_eval "format %.2f 3.14159" "3.14");
    ("format %c", check_eval "format %c 65" "A");
    ("format percent", check_eval "format 100%% {}" "100%");
    ("format star width", check_eval "format %*d 6 42" "    42");
    ("format multiple", check_eval {|format "%s=%d" x 7|} "x=7");
    ("scan %d", check_eval "scan {x 42 y} {x %d} v; set v" "42");
    ("scan multiple", check_eval "scan {3 4} {%d %d} a b; set b" "4");
    ("scan returns count", check_eval "scan {10 20} {%d %d} a b" "2");
    ("scan %s", check_eval "scan {hello world} {%s} w; set w" "hello");
    ("scan %x", check_eval "scan ff %x v; set v" "255");
  ]

(* Glob property: glob pattern with only literals behaves like equality. *)
let glob_literal =
  QCheck.Test.make ~name:"glob literal pattern equals equality" ~count:300
    QCheck.(
      pair
        (string_gen_of_size (Gen.int_bound 12) (Gen.char_range 'a' 'z'))
        (string_gen_of_size (Gen.int_bound 12) (Gen.char_range 'a' 'z')))
    (fun (pattern, s) ->
      Tcl.Glob.matches ~pattern s = (pattern = s))

let glob_star_prefix =
  QCheck.Test.make ~name:"glob star matches any suffix" ~count:300
    QCheck.(
      pair
        (string_gen_of_size (Gen.int_bound 8) (Gen.char_range 'a' 'z'))
        (string_gen_of_size (Gen.int_bound 8) (Gen.char_range 'a' 'z')))
    (fun (prefix, suffix) ->
      Tcl.Glob.matches ~pattern:(prefix ^ "*") (prefix ^ suffix))

(* ------------------------------------------------------------------ *)
(* Introspection *)

let info_tests =
  [
    ("info exists true", check_eval "set x 1; info exists x" "1");
    ("info exists false", check_eval "info exists nope" "0");
    ("info body returns the body",
     check_eval "proc f {} {return 1}; info body f" "return 1");
    ("info args", check_eval "proc f {a b} {}; info args f" "a b");
    ("info default with default",
     check_eval "proc f {{a 5}} {}; info default f a v; set v" "5");
    ("info procs lists procs",
     check_eval "proc myproc {} {}; lsearch [info procs] myproc; expr {[lsearch [info procs] myproc] >= 0}" "1");
    ("info commands includes set",
     check_eval "expr {[lsearch [info commands] set] >= 0}" "1");
    ("info level at top", check_eval "info level" "0");
    ("info level in proc", check_eval "proc f {} {info level}; f" "1");
    ("info vars sees local",
     check_eval "proc f {} {set loc 1; info vars}; f" "loc");
    ("info cmdcount grows",
     fun () ->
       let tcl = new_interp () in
       let a = int_of_string (run tcl "info cmdcount") in
       let b = int_of_string (run tcl "set x 1; info cmdcount") in
       Alcotest.(check bool) "grows" true (b > a));
    ("commands can be created dynamically (paper §2)",
     check_eval
       "proc make {name n} {proc $name {} [list return $n]}; make answer 42; answer"
       "42");
    ("programs as data: synthesize and run (paper §2)",
     check_eval
       "set prog {}; foreach i {1 2 3} {append prog \"lappend out $i\\n\"}; eval $prog; set out"
       "1 2 3");
  ]

(* ------------------------------------------------------------------ *)
(* file / glob / misc *)

let file_tests =
  [
    ("file tail", check_eval "file tail /a/b/c.txt" "c.txt");
    ("file dirname", check_eval "file dirname /a/b/c.txt" "/a/b");
    ("file extension", check_eval "file extension foo.tar.gz" ".gz");
    ("file rootname", check_eval "file rootname foo.txt" "foo");
    ("file exists yes (legacy order, Fig 9)",
     fun () ->
       let tcl = new_interp () in
       Alcotest.(check string) "exists" "1" (run tcl "file . isdirectory"));
    ("file isfile on directory", check_eval "file isfile ." "0");
    ("time returns microseconds",
     fun () ->
       let tcl = new_interp () in
       let out = run tcl "time {set x 1} 10" in
       Alcotest.(check bool) "format" true
         (contains ~needle:"microseconds per iteration" out));
    ("output capture via print",
     fun () ->
       let tcl = new_interp () in
       let buf = Buffer.create 16 in
       Tcl.Interp.set_output tcl (Buffer.add_string buf);
       ignore (run tcl {|print "hi\n"|});
       Alcotest.(check string) "output" "hi\n" (Buffer.contents buf));
    ("puts appends newline",
     fun () ->
       let tcl = new_interp () in
       let buf = Buffer.create 16 in
       Tcl.Interp.set_output tcl (Buffer.add_string buf);
       ignore (run tcl "puts hello");
       Alcotest.(check string) "output" "hello\n" (Buffer.contents buf));
    ("file channels: write then read back",
     fun () ->
       let tcl = new_interp () in
       let path = Filename.temp_file "tclchan" ".txt" in
       Tcl.Interp.set_var tcl "path" path;
       ignore
         (run tcl
            "set f [open $path w]; puts $f line1; puts -nonewline $f line2; \
             close $f");
       Alcotest.(check string) "read all" "line1\nline2"
         (run tcl "set f [open $path r]; set d [read $f]; close $f; set d");
       Sys.remove path);
    ("gets reads lines and reports eof",
     fun () ->
       let tcl = new_interp () in
       let path = Filename.temp_file "tclchan" ".txt" in
       Tcl.Interp.set_var tcl "path" path;
       ignore (run tcl "set f [open $path w]; puts $f a; puts $f bb; close $f");
       ignore (run tcl "set f [open $path r]");
       Alcotest.(check string) "first" "1" (run tcl "gets $f l");
       Alcotest.(check string) "line" "a" (run tcl "set l");
       Alcotest.(check string) "second" "2" (run tcl "gets $f l");
       Alcotest.(check string) "eof count" "-1" (run tcl "gets $f l");
       ignore (run tcl "close $f");
       Sys.remove path);
    ("append mode",
     fun () ->
       let tcl = new_interp () in
       let path = Filename.temp_file "tclchan" ".txt" in
       Tcl.Interp.set_var tcl "path" path;
       ignore (run tcl "set f [open $path w]; puts -nonewline $f ab; close $f");
       ignore (run tcl "set f [open $path a]; puts -nonewline $f cd; close $f");
       Alcotest.(check string) "appended" "abcd"
         (run tcl "set f [open $path r]; set d [read $f]; close $f; set d");
       Sys.remove path);
    ("closed channel is an error",
     fun () ->
       let tcl = new_interp () in
       let msg = expect_error tcl "read file99" in
       Alcotest.(check bool) "isn't open" true
         (contains ~needle:"isn't open" msg));
    ("reading a write channel is an error",
     fun () ->
       let tcl = new_interp () in
       let path = Filename.temp_file "tclchan" ".txt" in
       Tcl.Interp.set_var tcl "path" path;
       ignore (run tcl "set f [open $path w]");
       let msg = expect_error tcl "read $f" in
       ignore (run tcl "close $f");
       Sys.remove path;
       Alcotest.(check bool) "wasn't opened for reading" true
         (contains ~needle:"for reading" msg));
  ]

(* ------------------------------------------------------------------ *)
(* Edge cases: arrays, scoping, quoting *)

let edge_tests =
  [
    ("unset array element",
     check_eval "set a(x) 1; set a(y) 2; unset a(x); array names a" "y");
    ("unset whole array",
     check_eval "set a(x) 1; unset a; info exists a" "0");
    ("append to array element",
     check_eval "set a(k) ab; append a(k) cd; set a(k)" "abcd");
    ("incr array element",
     check_eval "set a(n) 5; incr a(n) 2; set a(n)" "7");
    ("lappend to array element",
     check_eval "lappend a(l) x; lappend a(l) y; set a(l)" "x y");
    ("array element with spaces in index",
     (* The reference must be brace-quoted or the space splits the word,
        exactly as in real Tcl. *)
     check_eval "set i {two words}; set a($i) v; set {a(two words)}" "v");
    ("scalar/array collision errors",
     fun () ->
       let msg = expect_error (new_interp ()) "set s 1; set s(x) 2" in
       Alcotest.(check bool) "isn't array" true
         (contains ~needle:"isn't array" msg));
    ("array used as scalar errors",
     fun () ->
       let msg = expect_error (new_interp ()) "set a(x) 1; set a 2" in
       Alcotest.(check bool) "is array" true
         (contains ~needle:"is array" msg));
    ("upvar to array element",
     check_eval
       "set a(k) 1; proc bump {name} {upvar $name v; incr v}; bump a(k); set a(k)"
       "2");
    ("nested procs share globals via global",
     check_eval
       "set g 0; proc f {} {global g; incr g; g2}; proc g2 {} {global g; incr g}; f; set g"
       "2");
    ("uplevel relative numbers",
     check_eval
       "proc outer {} {set x outer-x; inner}\n\
        proc inner {} {uplevel 1 {set x changed}}\n\
        proc check {} {outer}\n\
        check"
       "changed");
    ("empty command result in substitution",
     check_eval "proc nothing {} {}; set x a[nothing]b" "ab");
    ("semicolon and brackets in braces survive",
     check_eval {|set x {a;b [c] $d}|} "a;b [c] $d");
    ("deeply nested brackets",
     check_eval "expr [expr [expr [expr 1+1]+1]+1]" "4");
    ("quotes inside braces are literal",
     check_eval {|set x {say "hi"}|} {|say "hi"|});
    ("braces inside quotes are literal",
     check_eval {|set x "a {b} c"|} "a {b} c");
    ("command name from substitution",
     check_eval "set cmd set; $cmd y 5; set y" "5");
    ("whitespace-heavy formatting",
     check_eval "   set   x   7  \n\n;  ;  set x" "7");
    ("rename builtin and call through new name",
     check_eval "rename set assign; assign z 9; rename assign set; set z" "9");
    ("catch of wrong # args",
     check_eval "catch {set}" "1");
    ("string toupper/tolower roundtrip",
     check_eval "string tolower [string toupper mIxEd]" "mixed");
    ("scan %c yields a character",
     check_eval "scan X %c ch; set ch" "X");
    ("format negative numbers with width",
     check_eval "format %05d -42" "-0042");
    ("format precision on strings",
     check_eval "format %.3s abcdef" "abc");
    ("split empty string", check_eval "llength [split {} :]" "1");
    ("join single element", check_eval "join {one} -" "one");
    ("expr with newlines inside braces",
     check_eval "expr {1 +\n 2}" "3");
    ("foreach over list with braces",
     check_eval "set n 0; foreach {x} {{a b} {c d}} {incr n}; set n" "2");
  ]

(* ------------------------------------------------------------------ *)
(* regexp / regsub / case / array *)

let regexp_tests =
  [
    ("literal match", check_eval "regexp abc xxabcxx" "1");
    ("literal non-match", check_eval "regexp abc xyz" "0");
    ("dot matches any", check_eval "regexp a.c {a9c}" "1");
    ("star", check_eval "regexp {ab*c} ac" "1");
    ("star many", check_eval "regexp {ab*c} abbbbc" "1");
    ("plus requires one", check_eval "regexp {ab+c} ac" "0");
    ("optional", check_eval "regexp {colou?r} color" "1");
    ("anchors ^$", check_eval "regexp {^abc$} abc" "1");
    ("anchor rejects prefix", check_eval "regexp {^bc} abc" "0");
    ("class", check_eval "regexp {[a-c]+x} bbacx" "1");
    ("negated class", check_eval {|regexp {[^0-9]} a1|} "1");
    ("negated class all digits", check_eval {|regexp {[^0-9]} 123|} "0");
    ("alternation", check_eval "regexp {cat|dog} hotdog" "1");
    ("group capture into variable",
     check_eval "regexp {([0-9]+)\\.([0-9]+)} {pi is 3.14} all major minor; set major" "3");
    ("whole match variable",
     check_eval "regexp {b+} abbbc m; set m" "bbb");
    ("indices option",
     check_eval "regexp -indices {b+} abbbc m; set m" "1 3");
    ("nocase option", check_eval "regexp -nocase ABC xxabcxx" "1");
    ("unmatched group gives empty",
     check_eval "regexp {(a)|(b)} a all ga gb; set gb" "");
    ("bad pattern errors",
     fun () ->
       let msg = expect_error (new_interp ()) "regexp {a(} x" in
       Alcotest.(check bool) "mentions compile" true
         (contains ~needle:"compile" msg));
    ("regsub single",
     check_eval "regsub dog {hot dog} cat out; set out" "hot cat");
    ("regsub returns count", check_eval "regsub -all o foo 0 out" "2");
    ("regsub all",
     check_eval "regsub -all {[0-9]+} {a1 b22 c333} N out; set out" "aN bN cN");
    ("regsub & inserts match",
     check_eval "regsub -all {[0-9]+} {x5} {<&>} out; set out" "x<5>");
    ("regsub group reference",
     check_eval "regsub {(a+)(b+)} aabbb {\\2\\1} out; set out" "bbbaa");
    ("regsub no match leaves string",
     fun () ->
       let tcl = new_interp () in
       Alcotest.(check string) "count" "0" (run tcl "regsub z abc X out");
       Alcotest.(check string) "unchanged" "abc" (run tcl "set out"));
    ("regsub nocase preserves original case elsewhere",
     check_eval "regsub -nocase ABC {xxAbCyy} Z out; set out" "xxZyy");
    ("case command matches glob patterns",
     check_eval "case abc in {a*} {set r first} {b*} {set r second}; set r" "first");
    ("case default",
     check_eval "case zzz in {a*} {set r a} default {set r dflt}; set r" "dflt");
    ("case single-list form",
     check_eval "case abc in {{x*} {set r x} {a*} {set r a}}; set r" "a");
    ("array names and size",
     check_eval "set a(x) 1; set a(y) 2; lsort [array names a]" "x y");
    ("array size", check_eval "set a(x) 1; set a(y) 2; array size a" "2");
    ("array exists", check_eval "set a(x) 1; array exists a" "1");
    ("array exists scalar", check_eval "set s 5; array exists s" "0");
    ("array names with pattern",
     check_eval "set a(ab) 1; set a(cd) 2; array names a a*" "ab");
  ]

(* Regexp property tests against naive references. *)
let regexp_literal_prop =
  QCheck.Test.make ~name:"regexp literal equals substring search" ~count:300
    QCheck.(
      pair
        (string_gen_of_size (Gen.int_bound 6) (Gen.char_range 'a' 'c'))
        (string_gen_of_size (Gen.int_bound 12) (Gen.char_range 'a' 'c')))
    (fun (pattern, s) ->
      QCheck.assume (pattern <> "");
      let naive =
        let np = String.length pattern and ns = String.length s in
        let rec go i = i + np <= ns && (String.sub s i np = pattern || go (i + 1)) in
        go 0
      in
      match Tcl.Regexp.compile pattern with
      | Ok re -> Tcl.Regexp.matches re s = naive
      | Error _ -> false)

let regexp_star_prop =
  QCheck.Test.make ~name:"c* matches everywhere" ~count:200
    QCheck.(string_gen_of_size (Gen.int_bound 10) (Gen.char_range 'a' 'b'))
    (fun s ->
      match Tcl.Regexp.compile "a*" with
      | Ok re -> Tcl.Regexp.matches re s
      | Error _ -> false)

let regsub_identity_prop =
  QCheck.Test.make ~name:"regsub with & template is identity" ~count:200
    QCheck.(string_gen_of_size (Gen.int_bound 12) (Gen.char_range 'a' 'c'))
    (fun s ->
      QCheck.assume (String.length s > 0);
      match Tcl.Regexp.compile "[a-c]" with
      | Ok re ->
        let out, _ = Tcl.Regexp.replace re s ~template:"&" ~all:true in
        out = s
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Expression property tests against an OCaml reference *)

let expr_int_ops =
  QCheck.Test.make ~name:"expr arithmetic matches OCaml on ints" ~count:500
    QCheck.(triple (int_range (-1000) 1000) (int_range (-1000) 1000)
              (oneofl [ "+"; "-"; "*" ]))
    (fun (a, b, op) ->
      let expected =
        match op with
        | "+" -> a + b
        | "-" -> a - b
        | "*" -> a * b
        | _ -> assert false
      in
      let script = Printf.sprintf "expr {%d %s %d}" a op b in
      run_fresh script = string_of_int expected)

let expr_comparisons =
  QCheck.Test.make ~name:"expr comparisons match OCaml" ~count:500
    QCheck.(pair (int_range (-100) 100) (int_range (-100) 100))
    (fun (a, b) ->
      run_fresh (Printf.sprintf "expr {%d < %d}" a b)
      = (if a < b then "1" else "0")
      && run_fresh (Printf.sprintf "expr {%d == %d}" a b)
         = (if a = b then "1" else "0"))

let incr_loop_sums =
  QCheck.Test.make ~name:"while-loop sum equals closed form" ~count:50
    QCheck.(int_range 0 60)
    (fun n ->
      let script =
        Printf.sprintf
          "set s 0; set i 0; while {$i < %d} {incr i; incr s $i}; set s" n
      in
      run_fresh script = string_of_int (n * (n + 1) / 2))

let to_alcotest = List.map (fun (n, f) -> Alcotest.test_case n `Quick f)

let () =
  Alcotest.run "tcl"
    [
      ("syntax", to_alcotest syntax_tests);
      ("syntax-errors", to_alcotest syntax_error_tests);
      ("control", to_alcotest control_tests);
      ("procs", to_alcotest proc_tests);
      ("expr", to_alcotest expr_tests);
      ("lists", to_alcotest list_tests);
      ("strings", to_alcotest string_tests);
      ("edge-cases", to_alcotest edge_tests);
      ("regexp", to_alcotest regexp_tests);
      ("info", to_alcotest info_tests);
      ("file-misc", to_alcotest file_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            list_roundtrip;
            quote_element_roundtrip;
            glob_literal;
            glob_star_prefix;
            expr_int_ops;
            expr_comparisons;
            incr_loop_sums;
            regexp_literal_prop;
            regexp_star_prop;
            regsub_identity_prop;
          ] );
    ]
