(* The fleet-scale send fabric: async/broadcast send, futures, mailbox
   backpressure, the sharded registry under churn, the self-send fast
   path, stale-entry retry, and the deterministic crash-storm harness
   (ROADMAP: robustness at 1000 interpreters). *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let expect_error app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> Alcotest.failf "script %S unexpectedly returned %S" script v
  | Error msg -> msg

let new_app ~server ~name () = Tk.Main.create ~server ~name ()

let fresh_pair () =
  let server = Server.create () in
  let a = new_app ~server ~name:"alpha" () in
  let b = new_app ~server ~name:"beta" () in
  Tk.Core.update_all server;
  (server, a, b)

let virtualize app =
  ignore (Tk.Dispatch.use_virtual_clock app.Tk.Core.disp : int -> unit)

let metrics app = app.Tk.Core.metrics

(* ------------------------------------------------------------------ *)
(* Self-send fast path: differentially identical to the wire path *)

(* Run the same send sequence in two identical single-app worlds, one
   with the fast path on and one forced onto the wire, and require
   byte-identical results, error codes and errorInfo. *)
let self_send_differential () =
  let observe fast_path =
    let server = Server.create () in
    let a = new_app ~server ~name:"solo" () in
    a.Tk.Core.send.Tk.Core.self_fast_path <- fast_path;
    let ok_code, ok_val =
      Tcl.Interp.eval a.Tk.Core.interp "send solo set x ok-roundtrip"
    in
    let err_code, err_val =
      Tcl.Interp.eval a.Tk.Core.interp
        "send solo {if 1 {error {boom from afar}}}"
    in
    let info = Tcl.Interp.get_error_info a.Tk.Core.interp in
    ( (ok_code = Tcl.Interp.Tcl_ok, ok_val),
      (err_code = Tcl.Interp.Tcl_error, err_val),
      info )
  in
  let fast = observe true in
  let wire = observe false in
  let (f_ok, f_err, f_info) = fast and (w_ok, w_err, w_info) = wire in
  check_bool "ok status identical" (fst w_ok) (fst f_ok);
  check_string "ok result identical" (snd w_ok) (snd f_ok);
  check_bool "error status identical" (fst w_err) (fst f_err);
  check_string "error result identical" (snd w_err) (snd f_err);
  check_string "errorInfo byte-identical" w_info f_info;
  check_bool "errorInfo captured the remote frame" true
    (contains ~needle:"boom from afar" f_info)

let fast_path_tests =
  [
    ("self-send: fast path and wire path are differentially identical",
     self_send_differential);
    ( "self-send takes the fast path and is counted",
      fun () ->
        let server = Server.create () in
        let a = new_app ~server ~name:"solo" () in
        check_string "round trip" "7" (run a "send solo expr 3+4");
        check_int "fast path counted" 1 (metrics a).Tk.Metrics.sends_self;
        a.Tk.Core.send.Tk.Core.self_fast_path <- false;
        check_string "wire self-send still works" "8" (run a "send solo expr 4+4");
        check_int "wire path not miscounted as fast" 1
          (metrics a).Tk.Metrics.sends_self );
  ]

(* ------------------------------------------------------------------ *)
(* Stale registry entries: re-read once, retry the fresh entry *)

let shard_prop app name =
  Server.intern_atom app.Tk.Core.conn
    (Tk.Core.registry_shard_property (Tk.Core.shard_of_name name))

let raw_shard app name =
  match
    Server.get_property app.Tk.Core.conn
      (Server.root app.Tk.Core.server)
      ~prop:(shard_prop app name)
  with
  | Some p -> p.Window.prop_data
  | None -> ""

let write_raw_shard app name data =
  Server.change_property app.Tk.Core.conn
    (Server.root app.Tk.Core.server)
    ~prop:(shard_prop app name) ~ptype:Atom.string data

(* A window that once existed and is now gone — what a crashed peer's
   registry entry points at. *)
let dead_window app =
  let conn = app.Tk.Core.conn in
  let w =
    Server.create_window conn ~parent:(Server.root app.Tk.Core.server) ~x:0
      ~y:0 ~width:5 ~height:5 ~border_width:0
  in
  Server.destroy_window conn w;
  w

let stale_tests =
  [
    ( "stale entry shadowing a live one: send retries the fresh entry",
      fun () ->
        let _server, a, b = fresh_pair () in
        virtualize a;
        (* Simulate a crash racing re-registration: the shard holds a
           dead entry for "beta" in front of the live one, as if the old
           incarnation crashed between our lookup and our post. *)
        let dead = dead_window a in
        write_raw_shard a "beta"
          (Tcl.Tcl_list.format
             [ Tcl.Tcl_list.format [ "beta"; string_of_int dead ] ]
          ^ " " ^ raw_shard a "beta");
        let before = (metrics a).Tk.Metrics.ghosts_collected in
        check_string "send succeeded on the retried entry" "42"
          (run a "send beta expr 41+1");
        check_bool "the ghost was collected" true
          ((metrics a).Tk.Metrics.ghosts_collected > before);
        check_bool "registry is duplicate-free afterwards" true
          (List.length
             (List.filter
                (fun (n, _) -> n = "beta")
                (Tk.Core.read_registry a))
          = 1);
        ignore b );
    ( "stale entry with no fresh registration: no registered interpreter",
      fun () ->
        let _server, a, _b = fresh_pair () in
        virtualize a;
        let dead = dead_window a in
        write_raw_shard a "phantom"
          (Tcl.Tcl_list.format
             [ Tcl.Tcl_list.format [ "phantom"; string_of_int dead ] ]);
        let msg = expect_error a "send phantom set x 1" in
        check_bool "reported as unregistered" true
          (contains ~needle:"no registered interpreter" msg);
        check_bool "ghost never listed afterwards" false
          (List.mem "phantom" (Tk.Sendcmd.interps a)) );
  ]

(* ------------------------------------------------------------------ *)
(* Registry churn: register/rename/crash, no duplicates, no ghosts,
   sorted-stable *)

let sorted_strings l = List.sort compare l

let churn_tests =
  [
    ( "200 apps of register/rename/crash churn keep the registry clean",
      fun () ->
        let server = Server.create () in
        let anchor = new_app ~server ~name:"anchor" () in
        let pool = [| "editor"; "viewer"; "shell"; "debug" |] in
        let live = ref [] in
        let rng = ref 12345 in
        let draw bound =
          rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
          !rng lsr 13 mod bound
        in
        (* Rename: drop the old entry, register the same comm window
           under a fresh (collision-probed) name. *)
        let rename app fresh =
          let comm = app.Tk.Core.comm_win in
          Tk.Core.write_registry anchor
            (List.filter
               (fun (n, _) -> n <> app.Tk.Core.app_name)
               (Tk.Core.read_registry anchor));
          app.Tk.Core.app_name <-
            Tk.Core.register_name app ~name:fresh ~comm
        in
        for i = 1 to 200 do
          let app =
            new_app ~server ~name:pool.(draw (Array.length pool)) ()
          in
          live := app :: !live;
          (match draw 4 with
          | 0 ->
            (* crash without cleanup *)
            Server.kill_connection app.Tk.Core.conn;
            live := List.filter (fun x -> x != app) !live
          | 1 when i mod 2 = 0 ->
            (* orderly exit *)
            Tk.Core.destroy_app app;
            live := List.filter (fun x -> x != app) !live
          | 2 -> rename app pool.(draw (Array.length pool))
          | _ -> ())
        done;
        let entries = Tk.Core.read_registry anchor in
        let names = List.map fst entries in
        check_bool "aggregate is sorted by name" true
          (names = sorted_strings names);
        check_int "no duplicate names"
          (List.length (List.sort_uniq compare names))
          (List.length names);
        (* every live app listed, nothing else but the anchor *)
        check_int "exactly the live apps plus the anchor"
          (List.length !live + 1)
          (List.length names);
        List.iter
          (fun app ->
            check_bool
              (Printf.sprintf "live app %s listed" app.Tk.Core.app_name)
              true
              (List.mem app.Tk.Core.app_name names))
          !live;
        (* reads are stable: a second aggregate read is identical *)
        check_bool "sorted-stable across reads" true
          (Tk.Core.read_registry anchor = entries) );
    ( "unique-name probing stays O(1): one shard read per probe",
      fun () ->
        let server = Server.create () in
        let a = new_app ~server ~name:"twin" () in
        let b = new_app ~server ~name:"twin" () in
        let c = new_app ~server ~name:"twin" () in
        check_string "first keeps the name" "twin" a.Tk.Core.app_name;
        check_string "second is suffixed" "twin #2" b.Tk.Core.app_name;
        check_string "third is suffixed" "twin #3" c.Tk.Core.app_name );
  ]

(* ------------------------------------------------------------------ *)
(* Mailbox backpressure *)

let mailbox_tests =
  [
    ( "a full mailbox refuses syncs with a distinct overflow error",
      fun () ->
        let _server, a, b = fresh_pair () in
        virtualize a;
        b.Tk.Core.send.Tk.Core.mailbox_limit <- 2;
        (* Flood the wire without letting the target drain, then ask
           synchronously: the whole batch parses at once, the first two
           fit, the rest — including the sync — are refused. *)
        for _ = 1 to 5 do
          match Tk.Sendcmd.send_async a ~target:"beta" "set x 1" with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "async refused: %s" msg
        done;
        (match Tk.Sendcmd.send a ~target:"beta" "set x 2" with
        | Ok v -> Alcotest.failf "expected overflow, got %S" v
        | Error msg ->
          check_bool "overflow error names the mailbox" true
            (contains ~needle:"mailbox" msg));
        check_int "three asyncs and the sync were rejected" 4
          (metrics b).Tk.Metrics.mailbox_rejected;
        check_int "two asyncs were accepted" 2
          (metrics b).Tk.Metrics.mailbox_enqueued;
        check_bool "high water at the bound" true
          ((metrics b).Tk.Metrics.mailbox_high_water <= 2) );
    ( "send -retry rides out the overflow with jittered backoff",
      fun () ->
        let _server, a, b = fresh_pair () in
        virtualize a;
        b.Tk.Core.send.Tk.Core.mailbox_limit <- 2;
        for _ = 1 to 5 do
          ignore (Tk.Sendcmd.send_async a ~target:"beta" "set x 1")
        done;
        (match Tk.Sendcmd.send ~retry:true a ~target:"beta" "expr 1+1" with
        | Ok v -> check_string "retried to success" "2" v
        | Error msg -> Alcotest.failf "retry failed: %s" msg);
        check_bool "at least one retry recorded" true
          ((metrics a).Tk.Metrics.send_retries > 0);
        check_bool "retry consumed virtual time (backoff)" true
          (Tk.Dispatch.now_ms a.Tk.Core.disp > 0) );
    ( "async self-send defers to the own mailbox",
      fun () ->
        let server = Server.create () in
        let a = new_app ~server ~name:"solo" () in
        ignore (run a "set x before");
        check_string "not evaluated inline" ""
          (run a "send -async solo {set x after}");
        check_string "still the old value" "before" (run a "set x");
        Tk.Core.update a;
        check_string "evaluated from the mailbox" "after" (run a "set x") );
    ( "send mailbox gets and sets the bound from Tcl",
      fun () ->
        let server = Server.create () in
        let a = new_app ~server ~name:"solo" () in
        check_string "default bound" "64" (run a "send mailbox");
        ignore (run a "send mailbox 5");
        check_int "applied" 5 a.Tk.Core.send.Tk.Core.mailbox_limit;
        let msg = expect_error a "send mailbox zero" in
        check_bool "validates the argument" true
          (contains ~needle:"expected positive integer" msg) );
  ]

(* ------------------------------------------------------------------ *)
(* Async and futures *)

let async_future_tests =
  [
    ( "send -async is fire-and-forget and evaluated on the target's loop",
      fun () ->
        let _server, a, b = fresh_pair () in
        ignore (run b "set x before");
        check_string "returns immediately with nothing" ""
          (run a "send -async beta {set x after}");
        check_string "not yet evaluated" "before" (run b "set x");
        Tk.Core.update b;
        check_string "evaluated at the next drain" "after" (run b "set x");
        check_int "async counted" 1 (metrics a).Tk.Metrics.sends_async );
    ( "a future resolves ok and send wait returns the value",
      fun () ->
        let _server, a, _b = fresh_pair () in
        virtualize a;
        let handle = run a "send -future beta expr 6*7" in
        check_bool "handle shape" true (contains ~needle:"future#" handle);
        check_string "resolved value" "42"
          (run a (Printf.sprintf "send wait %s" handle));
        check_int "no pending futures left" 0 (Tk.Sendcmd.pending_futures a) );
    ( "send result polls without blocking and consumes on resolution",
      fun () ->
        let _server, a, b = fresh_pair () in
        let advance = Tk.Dispatch.use_virtual_clock a.Tk.Core.disp in
        (* A deaf target: the future stays pending until its deadline. *)
        b.Tk.Core.pre_handlers <- [];
        let handle = run a "send -future -timeout 300 beta expr 1" in
        check_string "pending while the peer is deaf" "pending"
          (run a (Printf.sprintf "send result %s" handle));
        advance 301;
        let r = run a (Printf.sprintf "send result %s" handle) in
        check_bool "resolved to timeout" true (contains ~needle:"timeout" r);
        let msg =
          expect_error a (Printf.sprintf "send result %s" handle)
        in
        check_bool "handle consumed" true
          (contains ~needle:"no such send future" msg) );
    ( "a future to a peer that dies resolves died, never lost",
      fun () ->
        let _server, a, b = fresh_pair () in
        virtualize a;
        let handle = run a "send -future beta set x 1" in
        Server.kill_connection b.Tk.Core.conn;
        let msg = expect_error a (Printf.sprintf "send wait %s" handle) in
        check_bool "died, not lost" true (contains ~needle:"died" msg);
        check_int "nothing pending" 0 (Tk.Sendcmd.pending_futures a);
        check_int "every future resolved"
          (metrics a).Tk.Metrics.futures_created
          (metrics a).Tk.Metrics.futures_resolved );
  ]

(* ------------------------------------------------------------------ *)
(* Broadcast *)

let broadcast_tests =
  [
    ( "send -all aggregates per-peer outcomes instead of aborting",
      fun () ->
        let server = Server.create () in
        let a = new_app ~server ~name:"hub" () in
        let _e1 = new_app ~server ~name:"editor1" () in
        let e2 = new_app ~server ~name:"editor2" () in
        let _v = new_app ~server ~name:"viewer" () in
        Tk.Core.update_all server;
        virtualize a;
        Server.kill_connection e2.Tk.Core.conn;
        let results = Tk.Sendcmd.broadcast a "expr 2+2" in
        let state name =
          let rec find = function
            | [] -> "missing"
            | (n, s, _) :: tl -> if n = name then s else find tl
          in
          find results
        in
        check_string "live editor answered" "ok" (state "editor1");
        check_string "viewer answered" "ok" (state "viewer");
        check_string "self answered" "ok" (state "hub");
        check_bool "dead editor reported died, broadcast not aborted" true
          (state "editor2" = "died" || state "editor2" = "missing");
        check_int "broadcast counted once" 1
          (metrics a).Tk.Metrics.sends_broadcast );
    ( "send -glob multicasts to the matching subset, sorted by name",
      fun () ->
        let server = Server.create () in
        let a = new_app ~server ~name:"hub" () in
        let _e1 = new_app ~server ~name:"editor1" () in
        let _e2 = new_app ~server ~name:"editor2" () in
        let _v = new_app ~server ~name:"viewer" () in
        Tk.Core.update_all server;
        virtualize a;
        let out = run a "send -glob editor* set who editors" in
        (match Tcl.Tcl_list.parse out with
        | Ok [ r1; r2 ] ->
          check_bool "editor1 first" true (contains ~needle:"editor1" r1);
          check_bool "editor2 second" true (contains ~needle:"editor2" r2)
        | Ok l -> Alcotest.failf "expected 2 results, got %d" (List.length l)
        | Error e -> Alcotest.failf "unparseable result: %s" e);
        check_bool "non-matching app untouched" true
          (expect_error a "send viewer set who" <> "editors") );
  ]

(* ------------------------------------------------------------------ *)
(* Guarded send evaluation (PR7): limits and -safe contexts on the
   receiving side, with the denied/limited outcomes in the taxonomy *)

(* Two apps on one shared virtual clock, like the storm harness: blocking
   [after] in the receiver advances time for the sender's deadline too. *)
let fresh_guarded_pair () =
  let server = Server.create () in
  let a = new_app ~server ~name:"alpha" () in
  let b = new_app ~server ~name:"beta" () in
  let vnow = ref 0.0 in
  let clock () = !vnow in
  let sleep ms = vnow := !vnow +. (float_of_int ms /. 1000.0) in
  List.iter
    (fun app ->
      Tk.Dispatch.set_clock app.Tk.Core.disp clock;
      Tk.Dispatch.set_sleep app.Tk.Core.disp sleep)
    [ a; b ];
  Tk.Core.update_all server;
  (a, b)

let guard_tests =
  [
    ( "send guard / send limit surface",
      fun () ->
        let _server, a, _b = fresh_pair () in
        check_string "default off" "off" (run a "send guard");
        ignore (run a "send guard limits");
        check_string "limits armed" "limits" (run a "send guard");
        ignore (run a "send guard safe");
        check_string "safe mode" "safe" (run a "send guard");
        ignore (run a "send guard on");
        check_string "on is limits" "limits" (run a "send guard");
        ignore (run a "send guard off");
        check_string "off again" "off" (run a "send guard");
        check_bool "bad mode rejected" true
          (contains ~needle:"bad guard mode"
             (expect_error a "send guard paranoid"));
        ignore (run a "send limit time 25");
        check_string "time reads back" "25" (run a "send limit time");
        ignore (run a "send limit commands 500");
        check_string "commands reads back" "500" (run a "send limit commands");
        check_bool "bad limit kind rejected" true
          (contains ~needle:"bad limit type"
             (expect_error a "send limit cycles 5")) );
    ( "command budget kills a CPU runaway from the wire",
      fun () ->
        let a, b = fresh_guarded_pair () in
        ignore (run b "send guard limits");
        ignore (run b "send limit commands 200");
        let msg = expect_error a "send beta {while 1 {set spin 1}}" in
        check_string "limited message"
          "script in application \"beta\" exceeded its command limit" msg;
        check_int "sender counted it" 1 (metrics a).Tk.Metrics.sends_limited;
        check_int "receiver counted it" 1 (metrics b).Tk.Metrics.recv_limited;
        (* The guard re-arms per request: the receiver is not wedged. *)
        check_string "receiver still serves" "2" (run a "send beta {expr 1+1}") );
    ( "time limit kills a clock runaway from the wire",
      fun () ->
        let a, b = fresh_guarded_pair () in
        ignore (run b "send guard limits");
        ignore (run b "send limit time 25");
        let msg = expect_error a "send beta {while 1 {after 1}}" in
        check_string "limited message"
          "script in application \"beta\" exceeded its time limit" msg;
        check_string "receiver still serves" "ok"
          (run a "send beta {set again ok}") );
    ( "safe guard denies hidden commands and isolates state",
      fun () ->
        let a, b = fresh_guarded_pair () in
        ignore (run b "send guard safe");
        let msg = expect_error a "send beta {exit 7}" in
        check_string "denial message"
          "permission denied: command \"exit\" is hidden" msg;
        check_int "sender counted denial" 1 (metrics a).Tk.Metrics.sends_denied;
        check_int "receiver counted denial" 1 (metrics b).Tk.Metrics.recv_denied;
        (* Benign scripts run, but in the slave: the main interpreter's
           variables never see them. *)
        check_string "benign script runs" "99" (run a "send beta {set marker 99}");
        check_bool "main interp isolated" true
          (contains ~needle:"no such variable" (expect_error b "set marker")) );
    ( "guarded self-send matches the wire message byte for byte",
      fun () ->
        let server = Server.create () in
        let solo = new_app ~server ~name:"solo" () in
        ignore (run solo "send guard limits");
        ignore (run solo "send limit commands 100");
        let msg = expect_error solo "send solo {while 1 {set spin 1}}" in
        check_string "fast-path limited message"
          "script in application \"solo\" exceeded its command limit" msg;
        (* The limit unwound the *receiving* evaluation; once delivered
           as a reply it is an ordinary error the sender can catch —
           even though sender and receiver share an interpreter here. *)
        check_string "sender-side catch traps it"
          "script in application \"solo\" exceeded its command limit"
          (run solo "catch {send solo {while 1 {set spin 1}}} m; set m") );
    ( "overflow and limited are distinct outcomes with distinct messages",
      fun () ->
        let a, b = fresh_guarded_pair () in
        ignore (run b "send guard limits");
        ignore (run b "send limit commands 100");
        (* A limited reply... *)
        let limited = expect_error a "send beta {while 1 {set spin 1}}" in
        (* ...and an overflow refusal from a saturated mailbox: flood
           asyncs so the batch parses at once, then ask synchronously. *)
        b.Tk.Core.send.Tk.Core.mailbox_limit <- 2;
        for _ = 1 to 5 do
          match Tk.Sendcmd.send_async a ~target:"beta" "set x 1" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "async send failed: %s" e
        done;
        let overflow =
          match
            Tk.Sendcmd.send_outcome ~timeout_ms:100 a ~target:"beta" "set y 2"
          with
          | Tk.Sendcmd.O_overflow v -> v
          | o -> Alcotest.failf "expected overflow, got %s" (Tk.Sendcmd.outcome_state o)
        in
        check_bool "limited names the limit" true
          (contains ~needle:"exceeded its command limit" limited);
        check_bool "overflow names the mailbox" true
          (contains ~needle:"mailbox of application \"beta\" is full" overflow);
        check_bool "messages are distinct" true (limited <> overflow) );
  ]

(* ------------------------------------------------------------------ *)
(* The crash-storm smoke: deterministic, fully resolved, conserved *)

let storm_tests =
  [
    ( "50-app crash-storm smoke: every send resolves, twice identically",
      fun () ->
        let cfg = Tk.Sendstorm.default in
        let r1 = Tk.Sendstorm.run cfg in
        let r2 = Tk.Sendstorm.run cfg in
        check_bool "two runs produce identical counters and outcomes" true
          (Tk.Sendstorm.counters_equal r1 r2);
        check_int "no unresolved futures" 0 r1.Tk.Sendstorm.unresolved_futures;
        check_bool "no lost futures" true
          (not (List.mem_assoc "lost" r1.Tk.Sendstorm.outcomes));
        check_bool "sends were issued" true (r1.Tk.Sendstorm.sends_issued > 0);
        (* Conservation: what the mailboxes accepted they drained. *)
        let counter name =
          try List.assoc name r1.Tk.Sendstorm.counters with Not_found -> 0
        in
        check_bool "mailboxes drained what they accepted" true
          (counter "tk.send.mailbox_drained" > 0
          && counter "tk.send.mailbox_drained"
             <= counter "tk.send.mailbox_enqueued");
        (* The taxonomy shows up under a 2% crash plan. *)
        check_bool "some sends succeeded" true
          (List.mem_assoc "ok" r1.Tk.Sendstorm.outcomes);
        check_bool "crashes landed" true (r1.Tk.Sendstorm.crashes_landed > 0);
        (* Every send resolved to exactly one known terminal state. *)
        List.iter
          (fun (state, _) ->
            check_bool ("known terminal state: " ^ state) true
              (List.mem state
                 [ "ok"; "error"; "died"; "timeout"; "overflow";
                   "sender-crashed" ]))
          r1.Tk.Sendstorm.outcomes );
    ( "200-app hostile storm: every runaway terminates, twice identically",
      fun () ->
        (* 1% hostile peers (seeded: two of 200) firing time-runaways,
           CPU-runaways and forbidden [exit] at a guarded fleet.  Crash
           and hang are off so the only way a send can fail to resolve
           quickly is a runaway outliving its budget — of which there
           must be none. *)
        let cfg =
          {
            Tk.Sendstorm.apps = 200;
            crash_percent = 0;
            hang_percent = 0;
            hostile_percent = 1;
            sends_per_app = 3;
            mailbox_limit = 16;
            timeout_ms = 200;
            guarded = true;
            guard_time_ms = 30;
            guard_cmds = 400;
            seed = 42;
          }
        in
        let r1 = Tk.Sendstorm.run cfg in
        let r2 = Tk.Sendstorm.run cfg in
        check_bool "two runs produce identical counters and outcomes" true
          (Tk.Sendstorm.counters_equal r1 r2);
        check_int "no unresolved futures" 0 r1.Tk.Sendstorm.unresolved_futures;
        let outcome name =
          try List.assoc name r1.Tk.Sendstorm.outcomes with Not_found -> 0
        in
        let counter name =
          try List.assoc name r1.Tk.Sendstorm.counters with Not_found -> 0
        in
        (* Every runaway was terminated by its guard — nothing waited
           out a deadline, nothing wedged a drain. *)
        check_int "no timeouts" 0 (outcome "timeout");
        check_bool "limits tripped" true (outcome "limited" > 0);
        check_bool "guard checks ran" true (counter "tcl.limit.checks" > 0);
        check_int "limit trips match the limited outcomes"
          (outcome "limited")
          (counter "tcl.limit.time_exceeded"
          + counter "tcl.limit.cmd_exceeded");
        check_int "denials match the denied outcomes" (outcome "denied")
          (counter "tcl.limit.denied");
        check_bool "benign traffic still flowed" true (outcome "ok" > 0);
        check_bool "mailboxes drained what they accepted" true
          (counter "tk.send.mailbox_drained"
          <= counter "tk.send.mailbox_enqueued");
        (* The guarded fleet serves follow-up traffic: the guards re-arm
           per request instead of wedging the receivers. *)
        check_bool "no losses" true
          (not (List.mem_assoc "lost" r1.Tk.Sendstorm.outcomes)) );
  ]

let () =
  Alcotest.run "send"
    [
      ("self-send fast path", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) fast_path_tests);
      ("stale registry entries", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) stale_tests);
      ("registry churn", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) churn_tests);
      ("mailbox backpressure", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) mailbox_tests);
      ("async and futures", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) async_future_tests);
      ("broadcast", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) broadcast_tests);
      ("guarded evaluation", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) guard_tests);
      ("crash storm", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) storm_tests);
    ]
