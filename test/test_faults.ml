(* The X protocol error model, fault injection and graceful degradation
   (ROADMAP: robustness). Exercises every layer: typed X_error values
   from the simulated server, the deterministic fault-injection plan,
   resource-cache fallbacks, widget operations on dead windows, the
   tkerror background-error pipeline, and the full widget tour built
   while every 7th request is rejected. *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_app ?(name = "test") () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name () in
  (server, app)

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let expect_error app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> Alcotest.failf "script %S unexpectedly returned %S" script v
  | Error msg -> msg

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Route a button click at a widget's center. *)
let click app path =
  let server = app.Tk.Core.server in
  let w = Tk.Core.lookup_exn app path in
  let win = Option.get (Server.lookup_window server w.Tk.Core.win) in
  let p = Window.root_position win in
  let x = p.Geom.x + (w.Tk.Core.width / 2)
  and y = p.Geom.y + (w.Tk.Core.height / 2) in
  Server.inject_motion server ~x ~y;
  Server.inject_button server ~button:1 ~pressed:true;
  Server.inject_button server ~button:1 ~pressed:false;
  Tk.Core.update app

(* ------------------------------------------------------------------ *)
(* The error model: typed X errors from the server *)

let error_model_tests =
  [
    ( "scripted fault raises X_error with the requested code",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"t" in
        Server.script_fault server Xerror.BadAlloc;
        (match Server.alloc_color conn "red" with
        | _ -> Alcotest.fail "expected an X_error"
        | exception Xerror.X_error e ->
          check_string "code" "BadAlloc" (Xerror.code_name e.Xerror.code);
          check_bool "injected" true e.Xerror.injected;
          check_bool "serial counted" true (e.Xerror.serial > 0));
        check_int "injected count" 1 (Server.faults_injected server);
        (* The plan is one-shot: the retry succeeds. *)
        check_bool "retry succeeds" true
          (Server.alloc_color conn "red" <> None) );
    ( "operations on a destroyed window raise a genuine BadWindow",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"t" in
        let win =
          Server.create_window conn ~parent:(Server.root server) ~x:0 ~y:0
            ~width:10 ~height:10 ~border_width:0
        in
        Server.destroy_window conn win;
        (match Server.map_window conn win with
        | () -> Alcotest.fail "expected an X_error"
        | exception Xerror.X_error e ->
          check_string "code" "BadWindow" (Xerror.code_name e.Xerror.code);
          check_bool "not injected" false e.Xerror.injected;
          check_int "resource" win e.Xerror.resource;
          (* Genuine errors don't count toward the injected/absorbed
             invariant even when a layer above absorbs them. *)
          Server.note_absorbed server e);
        check_int "injected" 0 (Server.faults_injected server);
        check_int "absorbed" 0 (Server.faults_absorbed server) );
    ( "periodic plan is deterministic for a fixed seed",
      fun () ->
        let stream seed =
          let server = Server.create () in
          let conn = Server.connect server ~name:"t" in
          let win =
            Server.create_window conn ~parent:(Server.root server) ~x:0 ~y:0
              ~width:50 ~height:50 ~border_width:0
          in
          Server.set_fault_plan server ~seed ~fail_every_nth:5 ();
          List.init 23 (fun _ ->
              match Server.clear_window conn win with
              | () -> false
              | exception Xerror.X_error _ -> true)
        in
        check_bool "same seed, same faults" true (stream 3 = stream 3);
        check_bool "faults actually fire" true (List.mem true (stream 3));
        check_bool "different seed shifts the phase" true
          (stream 0 <> stream 3) );
    ( "fail_kind scopes injection to one request class",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"t" in
        let win =
          Server.create_window conn ~parent:(Server.root server) ~x:0 ~y:0
            ~width:50 ~height:50 ~border_width:0
        in
        Server.set_fault_plan server ~fail_every_nth:1
          ~fail_kind:Server.Resource ();
        (* Non-resource requests sail through... *)
        Server.clear_window conn win;
        Server.map_window conn win;
        (* ...every resource allocation is rejected with BadAlloc. *)
        (match Server.alloc_color conn "blue" with
        | _ -> Alcotest.fail "expected an X_error"
        | exception Xerror.X_error e ->
          check_string "code" "BadAlloc" (Xerror.code_name e.Xerror.code));
        check_int "one injected" 1 (Server.faults_injected server) );
    ( "clear_faults disarms injection but keeps counters",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"t" in
        Server.script_fault server Xerror.BadFont;
        (match Server.open_font conn "fixed" with
        | _ -> Alcotest.fail "expected an X_error"
        | exception Xerror.X_error _ -> ());
        Server.set_fault_plan server ~fail_every_nth:1 ();
        Server.clear_faults server;
        check_bool "disarmed" true (Server.open_font conn "fixed" <> None);
        check_int "counter kept" 1 (Server.faults_injected server) );
  ]

(* ------------------------------------------------------------------ *)
(* Resource-cache degradation *)

let degradation_tests =
  [
    ( "color allocation degrades to monochrome",
      fun () ->
        let _server, app = fresh_app () in
        let server = app.Tk.Core.server in
        let cache = app.Tk.Core.cache in
        Server.script_fault server Xerror.BadAlloc;
        (match Tk.Rescache.color cache "orchid" with
        | Some c -> check_string "dark names go black" "#000000" (Color.to_hex c)
        | None -> Alcotest.fail "expected a fallback color");
        Server.script_fault server Xerror.BadAlloc;
        (match Tk.Rescache.color cache "white smoke" with
        | Some c ->
          check_string "light names stay white" "#ffffff" (Color.to_hex c)
        | None -> Alcotest.fail "expected a fallback color");
        check_int "two fallbacks" 2 (Tk.Rescache.fallbacks cache);
        check_int "absorbed = injected" (Server.faults_injected server)
          (Server.faults_absorbed server);
        (* The substitute was cached like a real answer: no new fault. *)
        ignore (Tk.Rescache.color cache "orchid");
        check_int "cached" 2 (Tk.Rescache.fallbacks cache) );
    ( "font allocation degrades to the fixed font",
      fun () ->
        let _server, app = fresh_app () in
        let server = app.Tk.Core.server in
        Server.script_fault server Xerror.BadFont;
        (match Tk.Rescache.font app.Tk.Core.cache "*-times-18-*" with
        | Some f -> check_string "family" "fixed" f.Font.family
        | None -> Alcotest.fail "expected a fallback font");
        check_int "absorbed = injected" (Server.faults_injected server)
          (Server.faults_absorbed server) );
    ( "GC allocation degrades to a client-side context",
      fun () ->
        let _server, app = fresh_app () in
        let server = app.Tk.Core.server in
        let cache = app.Tk.Core.cache in
        (* Prime the component caches so the scripted fault lands on the
           CreateGC request itself, not on a color lookup. *)
        ignore (Tk.Rescache.gc cache ~foreground:"black" ~background:"white" ());
        let before = Tk.Rescache.fallbacks cache in
        Server.script_fault server Xerror.BadAlloc;
        let gc = Tk.Rescache.gc cache ~foreground:"white" ~background:"black" () in
        check_int "null id" Xid.none gc.Gcontext.gc_id;
        check_int "one fallback" (before + 1) (Tk.Rescache.fallbacks cache);
        check_int "absorbed = injected" (Server.faults_injected server)
          (Server.faults_absorbed server) );
    ( "widget operations on a dead window are no-ops",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "frame .f -width 40 -height 40; pack append . .f {top}");
        Tk.Core.update app;
        let w = Tk.Core.lookup_exn app ".f" in
        (* Kill the window server-side, bypassing the widget layer (as a
           window manager or a buggy peer could). *)
        Server.destroy_window app.Tk.Core.conn w.Tk.Core.win;
        (* Client-side operations degrade to no-ops instead of raising. *)
        Tk.Core.move_resize w ~x:5 ~y:5 ~width:30 ~height:30;
        Tk.Core.schedule_redraw w;
        Tk.Core.update app;
        (* The DestroyNotify has been processed: the widget is forgotten. *)
        check_bool "forgotten" true
          (match Tk.Core.lookup app ".f" with
          | None -> true
          | Some w -> w.Tk.Core.destroyed) );
  ]

(* ------------------------------------------------------------------ *)
(* Background errors: the tkerror pipeline *)

let tkerror_tests =
  [
    ( "binding errors route through tkerror and the loop survives",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "proc tkerror msg {global errs; lappend errs $msg}");
        ignore
          (run app
             "button .b -text hi; pack append . .b {top}; bind .b <Button-1> \
              {error boom}");
        Tk.Core.update app;
        click app ".b";
        check_bool "tkerror saw the error" true
          (contains ~needle:"boom" (run app "set errs"));
        (* The event loop is still alive: a second click reports again. *)
        click app ".b";
        check_int "two reports" 2
          (int_of_string (run app "llength $errs")) );
    ( "tkerror is preferred over bgerror",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "proc tkerror msg {global who; set who tkerror}");
        ignore (run app "proc bgerror msg {global who; set who bgerror}");
        ignore (run app "after 0 {error x}");
        Tk.Core.update app;
        check_string "handler" "tkerror" (run app "set who") );
    ( "timer script errors reach tkerror with context",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "proc tkerror msg {global last; set last $msg}");
        ignore (run app "after 0 {error tick-fail}");
        Tk.Core.update app;
        check_bool "message" true
          (contains ~needle:"tick-fail" (run app "set last")) );
    ( "X errors in dispatcher callbacks are absorbed",
      fun () ->
        let _server, app = fresh_app () in
        ignore
          (Tk.Dispatch.after app.Tk.Core.disp ~ms:0 (fun () ->
               Xerror.raise_error Xerror.BadValue));
        (* Would previously unwind mainloop/update; now absorbed. *)
        Tk.Core.update app;
        check_bool "loop alive" true (not app.Tk.Core.app_destroyed) );
    ( "errorInfo is populated for background errors",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "proc tkerror msg {}");
        ignore (run app "after 0 {error deep-failure}");
        Tk.Core.update app;
        check_bool "stack trace" true
          (contains ~needle:"deep-failure" (run app "info errorinfo")) );
  ]

(* ------------------------------------------------------------------ *)
(* send to dead peers *)

let send_tests =
  [
    ( "stale registry entries are pruned; send reports them as unknown",
      fun () ->
        let _server, app = fresh_app () in
        (* Forge a registry entry whose communication window is dead, as
           would linger after a peer crashed without cleanup. The registry
           garbage-collects it on the next read, so it is never visible in
           [winfo interps] and a send reports an unknown interpreter (a
           Tcl error, not a crash). *)
        let entries = Tk.Core.read_registry app in
        Tk.Core.write_registry app (entries @ [ ("ghost", 424242) ]);
        check_bool "ghost never listed" false
          (List.mem "ghost" (Tk.Sendcmd.interps app));
        let msg = expect_error app "send ghost set x 1" in
        check_bool "reported as unknown" true
          (contains ~needle:"no registered interpreter" msg) );
    ( "send to a cleanly destroyed app reports no such interpreter",
      fun () ->
        let server, app = fresh_app () in
        let peer = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"peer" () in
        check_string "reachable while alive" "42"
          (run app "send peer expr 41+1");
        Tk.Core.destroy_app peer;
        let msg = expect_error app "send peer set x 1" in
        check_bool "unregistered" true
          (contains ~needle:"no registered interpreter" msg) );
  ]

(* ------------------------------------------------------------------ *)
(* The acceptance torture test: the widget tour under fire *)

let tour =
  {|wm title . "widget tour"
label .title -text "All widgets, one window"

frame .row1
menubutton .row1.mb -text File -menu .row1.mb.m
menu .row1.mb.m
.row1.mb.m add command -label Quit -command {destroy .}
button .row1.ok -text Button -command {set pressed 1}
checkbutton .row1.check -text Check -variable ticked
radiobutton .row1.r1 -text A -variable which -value a
radiobutton .row1.r2 -text B -variable which -value b
pack append .row1 .row1.mb {left} .row1.ok {left} .row1.check {left} \
  .row1.r1 {left} .row1.r2 {left}

frame .row2
scrollbar .row2.sb -command ".row2.list view"
listbox .row2.list -scroll ".row2.sb set" -geometry 14x4
entry .row2.entry -width 14
scale .row2.scale -from 0 -to 10 -length 80 -label vol
pack append .row2 .row2.sb {left filly} .row2.list {left} \
  .row2.entry {left} .row2.scale {left}

message .msg -width 260 -text "Tk permits collections of smaller applications."

frame .row3
text .row3.text -width 22 -height 3
canvas .row3.canvas -width 120 -height 40
pack append .row3 .row3.text {left} .row3.canvas {left}

pack append . .title {top} .row1 {top} .row2 {top} .msg {top} .row3 {top}

.row2.list insert end one two three four five six
.row2.entry insert 0 "type here"
.row2.scale set 7
.row3.text insert 1.0 "a text widget\nwith two lines"
.row3.canvas create rectangle 4 4 116 36
.row3.canvas create line 4 36 116 4
.row3.canvas create text 30 22 -text canvas
.row1.check select
.row1.r2 invoke
update|}

let tour_paths =
  [
    ".title"; ".row1"; ".row1.mb"; ".row1.mb.m"; ".row1.ok"; ".row1.check";
    ".row1.r1"; ".row1.r2"; ".row2"; ".row2.sb"; ".row2.list"; ".row2.entry";
    ".row2.scale"; ".msg"; ".row3"; ".row3.text"; ".row3.canvas";
  ]

let tour_tests =
  [
    ( "widget tour builds its full hierarchy with every 7th request failing",
      fun () ->
        let server = Server.create ~width:1280 ~height:800 () in
        Server.set_fault_plan server ~fail_every_nth:7 ();
        let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"tour" () in
        ignore (run app tour);
        Tk.Core.update app;
        List.iter
          (fun path ->
            check_bool (Printf.sprintf "%s exists" path) true
              (Tk.Core.lookup app path <> None))
          tour_paths;
        check_bool "faults actually fired" true
          (Server.faults_injected server > 0);
        check_int "every injected fault was absorbed"
          (Server.faults_injected server)
          (Server.faults_absorbed server);
        (* The display still renders to a usable screen dump. *)
        let dump =
          Raster.render server ~window:(Tk.Core.main_widget app).Tk.Core.win ()
        in
        check_bool "screen dump non-empty" true (String.length dump > 100);
        (* Widget state survived the torture. *)
        check_string "radio variable" "b" (run app "set which");
        check_string "scale value" "7" (run app ".row2.scale get");
        (* Calm the server down: the next full repaint is complete. *)
        Server.clear_faults server;
        List.iter
          (fun path ->
            match Tk.Core.lookup app path with
            | Some w -> Tk.Core.schedule_redraw w
            | None -> ())
          ("." :: tour_paths);
        Tk.Core.update app;
        let dump =
          Raster.render server ~window:(Tk.Core.main_widget app).Tk.Core.win ()
        in
        check_bool "labels render after faults clear" true
          (contains ~needle:"Button" dump) );
    ( "destructive script under faults: binding errors and dead windows",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "proc tkerror msg {global errs; lappend errs $msg}");
        ignore
          (run app
             "button .b -text go; pack append . .b {top}; bind .b <Button-1> \
              {error bang}");
        Tk.Core.update app;
        Server.set_fault_plan server ~fail_every_nth:5 ();
        click app ".b";
        click app ".b";
        ignore (run app "destroy .b");
        Tk.Core.update app;
        Server.clear_faults server;
        check_bool "errors were reported" true
          (int_of_string (run app "llength $errs") >= 2);
        check_int "every injected fault was absorbed"
          (Server.faults_injected server)
          (Server.faults_absorbed server);
        check_bool "app alive" true (not app.Tk.Core.app_destroyed) );
  ]

let suite name tests =
  ( name,
    List.map
      (fun (doc, f) -> Alcotest.test_case doc `Quick f)
      tests )

let () =
  Alcotest.run "faults"
    [
      suite "error-model" error_model_tests;
      suite "degradation" degradation_tests;
      suite "tkerror" tkerror_tests;
      suite "send" send_tests;
      suite "tour" tour_tests;
    ]
