(* Tests for the parse-once compilation layer: the compiled evaluator
   must be byte-identical to the reference character-at-a-time evaluator
   (values, statuses, errorInfo traces, command counts), caches must be
   shared, bounded and never stale, and the [time]/clock satellites must
   behave. *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let new_interp ~compile () =
  let tcl = Tcl.Builtins.new_interp () in
  Tcl.Interp.set_compile_enabled tcl compile;
  tcl

let stat tcl key =
  match List.assoc_opt key (Tcl.Interp.compile_stats tcl) with
  | Some v -> int_of_string v
  | None -> Alcotest.failf "no compile stat %S" key

let run tcl script =
  match Tcl.Interp.eval_value tcl script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

(* ------------------------------------------------------------------ *)
(* Differential: every observable of a script run must be identical with
   the compile cache on and off.  Each script runs in two fresh
   interpreters; we compare status, result value, errorInfo and the
   executed-command count. *)

let observe ~compile script =
  let tcl = new_interp ~compile () in
  let status, value = Tcl.Interp.eval tcl script in
  let status_name =
    match status with
    | Tcl.Interp.Tcl_ok -> "ok"
    | Tcl.Interp.Tcl_error -> "error"
    | Tcl.Interp.Tcl_return -> "return"
    | Tcl.Interp.Tcl_break -> "break"
    | Tcl.Interp.Tcl_continue -> "continue"
  in
  Printf.sprintf "status=%s value=%S errorInfo=%S commands=%d" status_name
    value
    (Tcl.Interp.get_error_info tcl)
    (Tcl.Interp.command_count tcl)

let differential script () =
  check_string script (observe ~compile:false script)
    (observe ~compile:true script)

let differential_scripts =
  [
    (* plain commands, separators, grouping *)
    "set a 1000";
    "set a 1; set b 2; set a";
    "set a 1\nset b 2\nset b";
    "set msg \"Hello, world\"";
    "set x {a b {x1 x2}}";
    "set a 5; set b {$a}";
    "set a 5; set b \"$a!\"";
    "set ab 7; set x ${ab}";
    "set x [set y [set z 9]]";
    "set y 5; set x a[set y]b";
    "set x \\$a";
    "set x a\\nb";
    "set x \\x41";
    "# a comment\nset x 3";
    "set x {a;b}";
    "set x a$; set x";
    "";
    "  \n\t ";
    "set x ]";
    (* arrays and variable forms *)
    "set a(1) one; set a(2) two; set a(1)";
    "set i 2; set a(x$i) v; set a(x2)";
    (* control flow *)
    "set r {}; foreach i {a b c} {lappend r $i-}; set r";
    "set s 0; for {set i 1} {$i <= 10} {incr i} {incr s $i}; set s";
    "set s 0; set i 0; while {$i < 5} {incr i; if {$i == 3} continue; \
     incr s $i}; set s";
    "set i 0; while 1 {incr i; if {$i == 4} break}; set i";
    "if {1 < 2} {set x yes} else {set x no}";
    (* procs, recursion, return *)
    "proc double {n} {expr {$n * 2}}; double 21";
    "proc fact {n} {if {$n <= 1} {return 1}; expr {$n * [fact [expr \
     {$n - 1}]]}}; fact 6";
    "proc p {} {return early; set never 1}; p";
    (* uplevel / upvar / global *)
    "proc bump {v} {upvar $v x; incr x}; set c 5; bump c; set c";
    "proc setter {} {uplevel {set outer 42}}; setter; set outer";
    "set g 1; proc rd {} {global g; incr g}; rd; set g";
    (* eval-constructed scripts *)
    "set body {set x 5}; eval $body; set x";
    "set cmd set; $cmd x 9";
    "eval {set a 1} ; eval \"set b [set a]\"; set b";
    (* catch and errors *)
    "catch {undefined_cmd a b} msg; set msg";
    "catch {expr {1 /}} msg; set msg";
    "catch {set} msg; set msg";
    "proc inner {} {error boom}; proc outer {} {inner}; catch outer m; \
     set m";
    (* errors that propagate to top level (errorInfo trace compared) *)
    "proc inner {} {error boom}; proc outer {} {inner}; outer";
    "undefined_cmd a b";
    "set x [undefined_cmd]";
    "expr {2 +}";
    "incr notanumbervar";
    "while {1} {error inside-loop}";
    "if {[error in-cond]} {set x 1}";
    (* syntax errors, including mid-script ones with side effects *)
    "set x {unclosed";
    "set x [set y 1";
    "set x \"unclosed";
    "set ok 1; set x {unclosed";
    "set x {abc}]";
    (* expressions: operators, functions, short-circuit *)
    "expr {3 + 4 * 2}";
    "expr {(3 + 4) * 2}";
    "expr {7 % 3 == 1 ? \"yes\" : \"no\"}";
    "expr {\"abc\" < \"abd\"}";
    "set i 0; expr {$i > 0 && [incr i]}; set i";
    "set i 0; expr {1 || [incr i]}; set i";
    "expr {int(3.9) + abs(-2)}";
    "set n 4; expr {$n * $n}";
    "expr 1 + 2";
    (* recursion limits (PR7): the overflow error, its catchability and
       re-arming must look the same from both evaluators *)
    "interp recursionlimit 30; proc loop {} {loop}; loop";
    "interp recursionlimit 30; proc loop {} {loop}; list [catch loop m] $m";
    "interp recursionlimit 20; proc down {n} {if {$n == 0} {return done}; \
     down [expr {$n - 1}]}; set a [catch {down 100}]; interp recursionlimit \
     400; list $a [down 100]";
  ]

let differential_tests =
  List.map (fun s -> (Printf.sprintf "on/off identical: %s" s, differential s))
    differential_scripts

(* ------------------------------------------------------------------ *)
(* Cache behavior: shared entries, hits/misses, freshness across proc
   redefinition and rename, bounded size. *)

let cache_tests =
  [
    ( "second evaluation of a script is a cache hit",
      fun () ->
        let tcl = new_interp ~compile:true () in
        ignore (run tcl "set x 1; set y 2");
        check_int "misses after first run" 1 (stat tcl "script_misses");
        check_int "hits after first run" 0 (stat tcl "script_hits");
        ignore (run tcl "set x 1; set y 2");
        check_int "hits after second run" 1 (stat tcl "script_hits");
        check_int "misses unchanged" 1 (stat tcl "script_misses") );
    ( "loop bodies share one cache entry across iterations",
      fun () ->
        let tcl = new_interp ~compile:true () in
        (* Counts per-iteration hits from the tree-walking executor;
           the VM runs lowered bodies without consulting the cache. *)
        Tcl.Interp.set_vm_enabled tcl false;
        ignore (run tcl "set i 0; while {$i < 100} {incr i}");
        (* The while body and condition each miss once, then hit. *)
        check_bool "hits dominate" true
          (stat tcl "script_hits" > 90);
        check_bool "misses stay small" true (stat tcl "script_misses" < 10) );
    ( "compiled evaluation performs no legacy parse passes",
      fun () ->
        let tcl = new_interp ~compile:true () in
        ignore (run tcl "set i 0; while {$i < 50} {incr i}");
        let compiles = stat tcl "script_compiles" in
        check_int "one parse pass per compile" compiles
          (stat tcl "parse_passes") );
    ( "proc redefinition replaces the compiled body",
      fun () ->
        let tcl = new_interp ~compile:true () in
        ignore (run tcl "proc greet {} {return old}");
        check_string "old body" "old" (run tcl "greet");
        ignore (run tcl "proc greet {} {return new}");
        check_string "new body" "new" (run tcl "greet") );
    ( "renamed proc keeps its compiled body; name can be reused",
      fun () ->
        let tcl = new_interp ~compile:true () in
        ignore (run tcl "proc greet {} {return original}");
        check_string "before rename" "original" (run tcl "greet");
        ignore (run tcl "rename greet hello");
        check_string "after rename" "original" (run tcl "hello");
        ignore (run tcl "proc greet {} {return replacement}");
        check_string "reused name" "replacement" (run tcl "greet");
        check_string "renamed untouched" "original" (run tcl "hello") );
    ( "script cache is bounded",
      fun () ->
        let tcl = new_interp ~compile:true () in
        for i = 1 to 700 do
          ignore (run tcl (Printf.sprintf "set x %d" i))
        done;
        check_bool "size stays within the limit" true
          (stat tcl "script_cache_size" <= 512);
        check_bool "evictions happened" true (stat tcl "script_evictions" > 0)
    );
    ( "clear_compile_caches empties both caches",
      fun () ->
        let tcl = new_interp ~compile:true () in
        ignore (run tcl "set x [expr {1 + 2}]");
        Tcl.Interp.clear_compile_caches tcl;
        check_int "script cache empty" 0 (stat tcl "script_cache_size");
        (* The interpreter still works after a cache flush. *)
        check_string "still evaluates" "3" (run tcl "set x [expr {1 + 2}]") );
    ( "disabled cache records no hits and evaluates identically",
      fun () ->
        let tcl = new_interp ~compile:false () in
        ignore (run tcl "set x 1");
        ignore (run tcl "set x 1");
        check_int "no hits" 0 (stat tcl "script_hits");
        check_int "no misses" 0 (stat tcl "script_misses");
        check_bool "legacy parse passes counted" true
          (stat tcl "parse_passes" > 0) );
    ( "expr ASTs are cached and reused",
      fun () ->
        let tcl = new_interp ~compile:true () in
        (* Same: the VM evaluates its own typed expression IR. *)
        Tcl.Interp.set_vm_enabled tcl false;
        ignore (run tcl "set i 0; while {$i < 20} {incr i}");
        check_bool "expr hits recorded" true (stat tcl "expr_hits" > 10) );
  ]

(* ------------------------------------------------------------------ *)
(* Satellite: [time] propagates abnormal completions and reads the
   pluggable clock. *)

let time_tests =
  [
    ( "time propagates break out of the loop",
      fun () ->
        let tcl = new_interp ~compile:true () in
        check_string "break escapes time" "1"
          (run tcl
             "set i 0; while 1 {incr i; time {break} 5; incr i 100}; set i")
    );
    ( "time propagates continue",
      fun () ->
        let tcl = new_interp ~compile:true () in
        check_string "continue escapes time" "0"
          (run tcl
             "set s 0; foreach i {1 2 3} {time {continue} 2; incr s $i}; \
              set s") );
    ( "time propagates return from a proc",
      fun () ->
        let tcl = new_interp ~compile:true () in
        check_string "return escapes time" "7"
          (run tcl "proc p {} {time {return 7} 5; return never}; p") );
    ( "time propagates errors with the body's trace",
      fun () ->
        let tcl = new_interp ~compile:true () in
        (match Tcl.Interp.eval tcl "time {error boom} 3" with
        | Tcl.Interp.Tcl_error, msg -> check_string "error value" "boom" msg
        | status, v ->
          Alcotest.failf "expected error, got %s %S"
            (match status with Tcl.Interp.Tcl_ok -> "ok" | _ -> "other")
            v);
        check_bool "errorInfo mentions the body" true
          (let info = Tcl.Interp.get_error_info tcl in
           String.length info > 0) );
    ( "time reads the pluggable clock",
      fun () ->
        let tcl = new_interp ~compile:true () in
        (* A fake clock that advances 1 ms per reading: [time] reads it
           once before and once after the loop, so 10 iterations measure
           1 ms total = 100 us per iteration, deterministically. *)
        let ticks = ref 0.0 in
        Tcl.Interp.set_time_source tcl
          (Some (fun () -> ticks := !ticks +. 0.001; !ticks));
        check_string "deterministic measurement"
          "100 microseconds per iteration" (run tcl "time {set x 1} 10") );
    ( "time rejects a bad count with context",
      fun () ->
        let tcl = new_interp ~compile:true () in
        match Tcl.Interp.eval tcl "time {set x 1} notanint" with
        | Tcl.Interp.Tcl_error, msg ->
          check_string "count context"
            "expected integer but got \"notanint\" (reading iteration count)"
            msg
        | _, v -> Alcotest.failf "expected error, got %S" v );
    ( "incr reports which variable failed to parse",
      fun () ->
        let tcl = new_interp ~compile:true () in
        ignore (run tcl "set v notanumber");
        match Tcl.Interp.eval tcl "incr v" with
        | Tcl.Interp.Tcl_error, msg ->
          check_string "incr context"
            "expected integer but got \"notanumber\" (reading value of \
             variable \"v\" to increment)"
            msg
        | _, v -> Alcotest.failf "expected error, got %S" v );
  ]

(* ------------------------------------------------------------------ *)
(* Binding dispatch: a storm of events over a button grid must hit the
   script cache nearly every time, and the counters must be visible
   through xstat / the metrics registry. *)

let fresh_app ?(name = "compiletest") () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name () in
  (server, app)

let run_app app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let binding_tests =
  [
    ( "binding storm hit rate exceeds 90%",
      fun () ->
        let server, app = fresh_app () in
        for i = 0 to 8 do
          ignore (run_app app (Printf.sprintf "button .b%d -text b%d" i i));
          ignore (run_app app (Printf.sprintf "pack append . .b%d {top}" i));
          ignore (run_app app (Printf.sprintf "bind .b%d z {incr hits}" i))
        done;
        ignore (run_app app "set hits 0");
        Tk.Core.update app;
        let w = Tk.Core.lookup_exn app ".b4" in
        let win =
          Option.get (Server.lookup_window server w.Tk.Core.win)
        in
        let p = Window.root_position win in
        Server.inject_motion server ~x:(p.Geom.x + 2) ~y:(p.Geom.y + 2);
        Tk.Core.update app;
        Tk.Core.reset_metrics app;
        for _ = 1 to 50 do
          Server.inject_key server ~keysym:"z" ~pressed:true;
          Tk.Core.update app
        done;
        check_string "all dispatches ran" "50" (run_app app "set hits");
        let m key =
          match Tk.Core.metric app ("tcl.compile." ^ key) with
          | Some v -> int_of_string v
          | None -> Alcotest.failf "missing metric tcl.compile.%s" key
        in
        let hits = m "script_hits" and misses = m "script_misses" in
        let rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
        check_bool
          (Printf.sprintf "hit rate %.2f > 0.9 (hits %d misses %d)" rate hits
             misses)
          true (rate > 0.9) );
    ( "xstat exposes the tcl.compile counters",
      fun () ->
        let _server, app = fresh_app ~name:"xstatcompile" () in
        ignore (run_app app "set x 1");
        ignore (run_app app "set x 1");
        let hits =
          int_of_string (run_app app "xstat get tcl.compile.script_hits")
        in
        check_bool "script_hits via xstat" true (hits >= 1);
        ignore (run_app app "xstat reset");
        (* Re-running the same [xstat get ...] text would itself score a
           cache hit before the command reads the counter; a differently
           spelled script is a miss, so it observes the reset value. *)
        check_string "reset clears the counter" "0"
          (run_app app "xstat get  tcl.compile.script_hits") );
  ]

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Recursion limit: both evaluators emit Tcl's exact overflow message *)

let overflow_phrase = "too many nested evaluations (infinite loop?)"

let overflow_message ~compile () =
  let tcl = new_interp ~compile () in
  Tcl.Interp.set_recursion_limit tcl 25;
  ignore (run tcl "proc loop {} {loop}");
  match Tcl.Interp.eval tcl "loop" with
  | Tcl.Interp.Tcl_error, msg ->
    let first_line =
      match String.index_opt msg '\n' with
      | Some i -> String.sub msg 0 i
      | None -> msg
    in
    check_string "exact Tcl message" overflow_phrase first_line
  | status, v ->
    Alcotest.failf "expected overflow error, got %s %S"
      (match status with Tcl.Interp.Tcl_ok -> "ok" | _ -> "non-error")
      v

let recursion_tests =
  [
    ("overflow message, reference path", overflow_message ~compile:false);
    ("overflow message, compiled path", overflow_message ~compile:true);
  ]

let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "compile"
    [
      ("differential", List.map (fun (n, f) -> tc n f) differential_tests);
      ("recursion", List.map (fun (n, f) -> tc n f) recursion_tests);
      ("caches", List.map (fun (n, f) -> tc n f) cache_tests);
      ("time", List.map (fun (n, f) -> tc n f) time_tests);
      ("bindings", List.map (fun (n, f) -> tc n f) binding_tests);
    ]
