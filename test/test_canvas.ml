(* Canvas-at-scale tests: the spatial index pinned against a naive
   linear-scan oracle (the `-no-canvas-index` ablation path) on a seeded
   randomized op stream, damage-region repaint proven byte-identical to a
   full redraw at the raster, tag-index consistency across every mutating
   verb, and the O(dirty) repaint counters. *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let fresh_app ?(name = "canvas") () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name () in
  (server, app)

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let run_err app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> Alcotest.failf "script %S unexpectedly succeeded: %s" script v
  | Error msg -> msg

let canvas_app ?(indexed = true) ?(name = "canvas") () =
  let server, app = fresh_app ~name () in
  Tk_widgets.Canvas.set_index_enabled indexed;
  ignore (run app "canvas .c -width 300 -height 200");
  Tk_widgets.Canvas.set_index_enabled true;
  ignore (run app "pack append . .c {top}");
  Tk.Core.update app;
  (server, app)

let metric app name =
  match Tk.Core.metric app name with
  | Some v -> int_of_string v
  | None -> Alcotest.failf "missing metric %s" name

(* ------------------------------------------------------------------ *)
(* Deterministic surface behaviour *)

let surface_tests =
  [
    ( "tags: create -tags, addtag, dtag, gettags, find withtag",
      fun () ->
        let _, app = canvas_app () in
        let a = run app ".c create rectangle 10 10 30 20 -tags {box hot}" in
        let b = run app ".c create line 0 0 50 50 -tags box" in
        check_string "withtag box" (a ^ " " ^ b) (run app ".c find withtag box");
        check_string "withtag hot" a (run app ".c find withtag hot");
        ignore (run app ".c addtag cold withtag box");
        check_string "gettags b" "box cold" (run app (".c gettags " ^ b));
        ignore (run app ".c dtag box cold");
        check_string "cold dropped" "box hot" (run app (".c gettags " ^ a));
        ignore (run app ".c dtag hot");
        check_string "one-arg dtag" "box" (run app (".c gettags " ^ a));
        check_string "gettags of unknown tag" "" (run app ".c gettags nosuch")
    );
    ( "find all/overlapping/enclosed/closest and bbox",
      fun () ->
        let _, app = canvas_app () in
        let a = run app ".c create rectangle 10 10 30 20" in
        let b = run app ".c create rectangle 100 100 140 120" in
        let c = run app ".c create text 12 15 -text x" in
        check_string "all" (String.concat " " [ a; b; c ])
          (run app ".c find all");
        check_string "overlapping" b
          (run app ".c find overlapping 110 105 115 110");
        check_string "enclosed" b (run app ".c find enclosed 99 99 141 121");
        check_string "closest" b (run app ".c find closest 120 110");
        check_string "closest with halo picks topmost within halo" c
          (run app ".c find closest 13 14 500");
        check_string "bbox" "100 100 141 121" (run app (".c bbox " ^ b));
        check_string "bbox of nothing" "" (run app ".c bbox nosuch") );
    ( "raise/lower control display order (topmost wins find closest)",
      fun () ->
        let _, app = canvas_app () in
        let a = run app ".c create rectangle 10 10 30 30" in
        let b = run app ".c create rectangle 10 10 30 30" in
        check_string "later create on top" b (run app ".c find closest 20 20");
        ignore (run app (".c raise " ^ a));
        check_string "raised to top" a (run app ".c find closest 20 20");
        ignore (run app (".c lower " ^ a));
        check_string "lowered to bottom" b (run app ".c find closest 20 20");
        ignore (run app (".c raise " ^ a ^ " " ^ b));
        check_string "raise above" a (run app ".c find closest 20 20") );
    ( "bulk move/itemconfigure/scale touch only the tag",
      fun () ->
        let _, app = canvas_app () in
        let a = run app ".c create rectangle 10 10 20 20 -tags hot" in
        let b = run app ".c create rectangle 50 50 60 60" in
        ignore (run app ".c move hot 5 -5");
        check_string "a moved" "15 5 25 15" (run app (".c coords " ^ a));
        check_string "b untouched" "50 50 60 60" (run app (".c coords " ^ b));
        ignore (run app ".c scale hot 0 0 2.0 2.0");
        check_string "a scaled" "30 10 50 30" (run app (".c coords " ^ a));
        ignore (run app ".c itemconfigure hot -fill red");
        check_string "a filled" "red"
          (run app (".c itemconfigure " ^ a ^ " -fill"));
        check_string "b unfilled" ""
          (run app (".c itemconfigure " ^ b ^ " -fill")) );
    ( "coords replacement validates the item kind's arity",
      fun () ->
        let _, app = canvas_app () in
        let a = run app ".c create rectangle 10 10 20 20" in
        let msg = run_err app (".c coords " ^ a ^ " 1 2 3") in
        check_bool "arity error" true
          (msg = "wrong # coordinates: expected 4, got 3");
        check_string "coords unchanged" "10 10 20 20"
          (run app (".c coords " ^ a));
        let t = run app ".c create text 5 5 -text hi" in
        let msg = run_err app (".c coords " ^ t ^ " 1 2 3 4") in
        check_bool "text arity error" true
          (msg = "wrong # coordinates: expected 2, got 4") );
    ( "delete by tag, by id, and all",
      fun () ->
        let _, app = canvas_app () in
        let a = run app ".c create line 0 0 5 5 -tags junk" in
        let _b = run app ".c create line 1 1 6 6 -tags junk" in
        let c = run app ".c create line 2 2 7 7" in
        ignore (run app ".c delete junk");
        check_string "tag deleted" c (run app ".c find all");
        check_bool "id gone" true
          (run_err app (".c coords " ^ a) <> "");
        ignore (run app ".c delete all");
        check_string "empty" "0" (run app ".c itemcount") );
    ( "kind defaults: rectangle outline-only, line/text black fill",
      fun () ->
        let _, app = canvas_app () in
        let r = run app ".c create rectangle 0 0 5 5" in
        check_string "rect fill" ""
          (run app (".c itemconfigure " ^ r ^ " -fill"));
        check_string "rect outline" "black"
          (run app (".c itemconfigure " ^ r ^ " -outline"));
        let l = run app ".c create line 0 0 5 5" in
        check_string "line fill" "black"
          (run app (".c itemconfigure " ^ l ^ " -fill")) );
  ]

(* ------------------------------------------------------------------ *)
(* Seeded randomized op stream, applied identically to an indexed canvas
   and to the linear-scan ablation (the oracle). *)

let seed = 0x5eed

let tag_pool = [| "a"; "b"; "hot"; "grid" |]

let color_pool = [| "black"; "red"; "gray50"; "" |]

let rint rng lo hi = lo + Random.State.int rng (hi - lo + 1)

let rtag rng = tag_pool.(Random.State.int rng (Array.length tag_pool))

let rcolor rng = color_pool.(Random.State.int rng (Array.length color_pool))

(* One random mutating op as a Tcl script. [ids] mirrors the live id set
   (identical in both apps since the stream is identical). *)
let random_op rng ids next_id =
  let pick_id () = List.nth !ids (Random.State.int rng (List.length !ids)) in
  let coords4 () =
    Printf.sprintf "%d %d %d %d" (rint rng (-60) 340) (rint rng (-40) 240)
      (rint rng (-60) 340) (rint rng (-40) 240)
  in
  let choice = if !ids = [] then 0 else Random.State.int rng 10 in
  match choice with
  | 0 | 1 | 2 -> (
    let id = !next_id in
    next_id := id + 1;
    ids := !ids @ [ id ];
    let tags = if Random.State.bool rng then " -tags " ^ rtag rng else "" in
    match Random.State.int rng 3 with
    | 0 ->
      Printf.sprintf ".c create rectangle %s -fill {%s} -outline {%s}%s"
        (coords4 ()) (rcolor rng) (rcolor rng) tags
    | 1 ->
      Printf.sprintf ".c create line %s -fill {%s}%s" (coords4 ())
        (rcolor rng) tags
    | _ ->
      Printf.sprintf ".c create text %d %d -text {w%d}%s" (rint rng (-60) 340)
        (rint rng (-40) 240) (rint rng 0 99) tags)
  | 3 ->
    let id = pick_id () in
    ids := List.filter (fun i -> i <> id) !ids;
    Printf.sprintf ".c delete %d" id
  | 4 ->
    Printf.sprintf ".c move %s %d %d"
      (if Random.State.bool rng then string_of_int (pick_id ()) else rtag rng)
      (rint rng (-30) 30) (rint rng (-30) 30)
  | 5 ->
    Printf.sprintf ".c itemconfigure %s -fill {%s}"
      (if Random.State.bool rng then string_of_int (pick_id ()) else rtag rng)
      (rcolor rng)
  | 6 ->
    Printf.sprintf ".c %s %s"
      (if Random.State.bool rng then "raise" else "lower")
      (if Random.State.bool rng then string_of_int (pick_id ()) else rtag rng)
  | 7 ->
    if Random.State.bool rng then
      Printf.sprintf ".c addtag %s withtag %d" (rtag rng) (pick_id ())
    else Printf.sprintf ".c dtag %d %s" (pick_id ()) (rtag rng)
  | 8 ->
    Printf.sprintf ".c scale %s %d %d %.2f %.2f" (rtag rng)
      (rint rng (-20) 20) (rint rng (-20) 20)
      (0.5 +. Random.State.float rng 1.5)
      (0.5 +. Random.State.float rng 1.5)
  | _ ->
    (* Relative restack: distinct ids only (self-reference is an error). *)
    let a = pick_id () and b = pick_id () in
    if a = b then Printf.sprintf ".c raise %d" a
    else
      Printf.sprintf ".c %s %d %d"
        (if Random.State.bool rng then "raise" else "lower")
        a b

(* Queries whose answers must match between index and oracle. *)
let probe_queries rng =
  let r () =
    Printf.sprintf "%d %d %d %d" (rint rng (-80) 360) (rint rng (-60) 260)
      (rint rng (-80) 360) (rint rng (-60) 260)
  in
  [
    ".c find all";
    ".c itemcount";
    Printf.sprintf ".c find overlapping %s" (r ());
    Printf.sprintf ".c find enclosed %s" (r ());
    Printf.sprintf ".c find closest %d %d" (rint rng (-80) 360)
      (rint rng (-60) 260);
    Printf.sprintf ".c find closest %d %d %d" (rint rng (-80) 360)
      (rint rng (-60) 260) (rint rng 0 40);
    Printf.sprintf ".c find withtag %s" (rtag rng);
    Printf.sprintf ".c bbox %s" (rtag rng);
  ]

let canvas_widget app = Tk.Core.lookup_exn app ".c"

(* Drive [rounds] batches; on each batch apply the same random ops to both
   apps, drain (partial repaint path), and compare every probe; then force
   a full redraw on the indexed app and require the raster output to be
   byte-identical to what the damage path left. Returns a transcript for
   the two-run identity check. *)
let differential_run () =
  let rng = Random.State.make [| seed |] in
  let server_i, app_i = canvas_app ~indexed:true ~name:"cv-index" () in
  let _server_l, app_l = canvas_app ~indexed:false ~name:"cv-linear" () in
  let ids = ref [] and next_id = ref 1 in
  let transcript = Buffer.create 4096 in
  for round = 1 to 25 do
    for _ = 1 to 8 do
      let op = random_op rng ids next_id in
      Buffer.add_string transcript (op ^ "\n");
      let ri = run app_i op and rl = run app_l op in
      check_string ("op result: " ^ op) rl ri
    done;
    (* Drain both: indexed app takes the damage path where possible. *)
    Tk.Core.update app_i;
    Tk.Core.update app_l;
    List.iter
      (fun q ->
        let ri = run app_i q and rl = run app_l q in
        check_string (Printf.sprintf "round %d: %s" round q) rl ri;
        Buffer.add_string transcript (q ^ " -> " ^ ri ^ "\n"))
      (probe_queries rng);
    (* A small targeted edit so the partial-repaint path runs every round
       (the wide-ranging batch above usually unions into a deopt-to-full). *)
    let tick = run app_i ".c create rectangle 2 2 6 6" in
    check_string "tick ids agree" (run app_l ".c create rectangle 2 2 6 6")
      tick;
    next_id := !next_id + 1;
    Tk.Core.update app_i;
    Tk.Core.update app_l;
    ignore (run app_i (".c delete " ^ tick));
    ignore (run app_l (".c delete " ^ tick));
    Tk.Core.update app_i;
    Tk.Core.update app_l;
    (* Damage vs full: the keyed op store after partial repaints must be
       indistinguishable from a from-scratch redraw. *)
    let damaged = Raster.render server_i () in
    Tk.Core.schedule_redraw (canvas_widget app_i);
    Tk.Core.update app_i;
    let full = Raster.render server_i () in
    check_string (Printf.sprintf "round %d: damage raster = full" round) full
      damaged;
    Buffer.add_string transcript damaged
  done;
  (* Tag-index consistency, both directions, through the Tcl surface. *)
  List.iter
    (fun app ->
      let all =
        String.split_on_char ' ' (run app ".c find all")
        |> List.filter (fun s -> s <> "")
      in
      Array.iter
        (fun tag ->
          let members =
            String.split_on_char ' ' (run app (".c find withtag " ^ tag))
            |> List.filter (fun s -> s <> "")
          in
          List.iter
            (fun id ->
              let tags = run app (".c gettags " ^ id) in
              check_bool
                (Printf.sprintf "withtag %s member %s carries the tag" tag id)
                true
                (List.mem tag (String.split_on_char ' ' tags)))
            members;
          List.iter
            (fun id ->
              let tags = String.split_on_char ' ' (run app (".c gettags " ^ id)) in
              if List.mem tag tags then
                check_bool
                  (Printf.sprintf "item %s with tag %s is in withtag" id tag)
                  true (List.mem id members))
            all)
        tag_pool)
    [ app_i; app_l ];
  (* The run must actually have exercised the machinery it claims to. *)
  check_bool "indexed app used the grid" true
    (metric app_i "tk.canvas.index_queries" > 0);
  check_bool "oracle app used linear scans" true
    (metric app_l "tk.canvas.linear_scans" > 0);
  check_bool "damage path ran" true
    (metric app_i "tk.canvas.damage_redraws" > 0);
  check_bool "damage coalescing happened" true
    (metric app_i "tk.damage.coalesced" > 0);
  Buffer.contents transcript

let differential_tests =
  [
    ( "randomized stream: index = linear oracle, damage raster = full",
      fun () -> ignore (differential_run ()) );
    ( "two runs on the fixed seed are identical",
      fun () ->
        let t1 = differential_run () in
        let t2 = differential_run () in
        check_string "transcripts equal" t1 t2 );
  ]

(* ------------------------------------------------------------------ *)
(* O(dirty) repaint accounting *)

let counter_tests =
  [
    ( "move-one in a populated canvas repaints O(dirty), not O(n)",
      fun () ->
        let _, app = canvas_app () in
        ignore
          (run app
             "for {set i 0} {$i < 400} {incr i} { .c create rectangle \
              [expr ($i%20)*15] [expr ($i/20)*10] [expr ($i%20)*15+8] \
              [expr ($i/20)*10+6] }");
        let hot = run app ".c create rectangle 290 190 296 196 -tags hot" in
        ignore hot;
        Tk.Core.update app;
        let full_before = metric app "tk.canvas.full_redraws" in
        let considered_before = metric app "tk.canvas.items_considered" in
        ignore (run app ".c move hot 1 1");
        Tk.Core.update app;
        check_bool "no full redraw" true
          (metric app "tk.canvas.full_redraws" = full_before);
        check_bool "one damage redraw more" true
          (metric app "tk.canvas.damage_redraws" > 0);
        let considered =
          metric app "tk.canvas.items_considered" - considered_before
        in
        check_bool
          (Printf.sprintf "considered %d of 401 items" considered)
          true
          (considered < 20) );
    ( "damage covering the widget deopts to a full redraw",
      fun () ->
        let _, app = canvas_app () in
        ignore (run app ".c create rectangle 0 0 299 199 -tags big");
        Tk.Core.update app;
        let deopt_before = metric app "tk.damage.deopt_full" in
        ignore (run app ".c move big 1 0");
        Tk.Core.update app;
        check_bool "deopted" true
          (metric app "tk.damage.deopt_full" > deopt_before) );
  ]

let () =
  Alcotest.run "canvas"
    [
      ("surface", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) surface_tests);
      ( "differential",
        List.map (fun (n, f) -> Alcotest.test_case n `Quick f) differential_tests );
      ("counters", List.map (fun (n, f) -> Alcotest.test_case n `Quick f) counter_tests);
    ]
