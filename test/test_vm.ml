(* Tests for the bytecode VM (PR8): every observable of a script run
   must be byte-identical across the three execution tiers — the
   reference character-at-a-time evaluator, the compiled tree-walking
   executor, and the bytecode VM.  We compare status, result value,
   errorInfo and the executed-command count; the corpus leans on the
   VM's sharp edges (dual-ported values and %.12g float rendering, slot
   versus hash variable access, inline-cached dispatch, deopt when a
   core builtin is shadowed) plus PR 7's recursionlimit / resource-limit
   / cancellation messages.  The counters section checks the tcl.vm.*
   metrics the ablation reports. *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

type mode = Reference | Treewalk | Vm

let mode_name = function
  | Reference -> "reference"
  | Treewalk -> "treewalk"
  | Vm -> "vm"

let new_interp mode =
  let tcl = Tcl.Builtins.new_interp () in
  (match mode with
  | Reference -> Tcl.Interp.set_compile_enabled tcl false
  | Treewalk -> Tcl.Interp.set_vm_enabled tcl false
  | Vm -> ());
  tcl

let status_name = function
  | Tcl.Interp.Tcl_ok -> "ok"
  | Tcl.Interp.Tcl_error -> "error"
  | Tcl.Interp.Tcl_return -> "return"
  | Tcl.Interp.Tcl_break -> "break"
  | Tcl.Interp.Tcl_continue -> "continue"

let observation tcl (status, value) =
  Printf.sprintf "status=%s value=%S errorInfo=%S commands=%d"
    (status_name status) value
    (Tcl.Interp.get_error_info tcl)
    (Tcl.Interp.command_count tcl)

let observe mode script =
  let tcl = new_interp mode in
  observation tcl (Tcl.Interp.eval tcl script)

(* The reference evaluator is the oracle; both compiled tiers must
   reproduce it byte for byte. *)
let differential script () =
  let oracle = observe Reference script in
  check_string (Printf.sprintf "vm: %s" script) oracle (observe Vm script);
  check_string
    (Printf.sprintf "treewalk: %s" script)
    oracle (observe Treewalk script)

let differential_scripts =
  [
    (* dual-ported values: ints and floats shimmer through string reps *)
    "expr {1.0 / 3}";
    "expr {0.1 + 0.2}";
    "expr {2.5 * 2}";
    "set x [expr {1.0 / 3}]; set y $x; expr {$y * 3}";
    "set x 1e15; expr {$x + 1.0}";
    "expr {double(7)}";
    "set x 3.5; string length $x";
    "set i 5; append i 0; incr i";
    "set x 07; incr x";
    (* int overflow wraps identically on every tier (native 63-bit) *)
    "expr {4611686018427387903 + 1}";
    "expr {-4611686018427387904 - 1}";
    "set x 4611686018427387903; incr x";
    (* end-relative indices and empty-list operations *)
    "lindex {a b c d} end-1";
    "lrange {a b c d e} 1 end-2";
    "lindex {} 0";
    "lrange {} 0 end";
    "llength {}";
    "lsort {}";
    "set l {}; lappend l; set l";
    "linsert {a b c} end-1 X";
    "catch {lindex {a b} end-5} m; set m";
    (* slot-resolved locals, upvar/global aliasing into slotted frames *)
    "proc f {a b} {set c [expr {$a + $b}]; incr c; return $c}; f 3 4";
    "proc f {n} {set n 0; while {$n < 5} {incr n}; set n}; f 99";
    "proc bump {v} {upvar $v x; incr x 10}; proc g {} {set y 1; bump y; \
     set y}; g";
    "set g 100; proc rd {} {global g; incr g; set g}; rd";
    "proc outer {} {set x 1; uplevel {set lifted 5}; set x}; outer; \
     set lifted";
    (* arrays force the hash path inside otherwise-slotted frames *)
    "proc f {} {set a(1) one; set a(2) two; set a(1)}; f";
    "proc f {i} {set a(x$i) v$i; set a(x2)}; f 2";
    (* inline-cached dispatch across redefinition *)
    "proc p {} {return one}; set r [p]; proc p {} {return two}; \
     list $r [p]";
    "proc q {n} {return $n}; set s 0; set i 0; while {$i < 10} {incr i; \
     incr s [q $i]}; set s";
    (* shadowing a core builtin deopts the inlined opcode *)
    "rename set realset; proc set {v x} {realset ::shadowed 1; uplevel \
     [list realset $v $x]}; set probe 7; realset out $probe; rename set {}; \
     rename realset set; list $probe $::shadowed";
    (* catch / return interactions the typed result channel must respect *)
    "proc p {} {catch {return 5}}; p";
    "proc p {} {list [catch {return 5} m] $m}; p";
    "proc p {} {expr {\"[return 9]\"}}; p";
    "proc p {} {catch {error boom} m; set m}; p";
    (* control flow: break/continue from nested bodies *)
    "set s 0; for {set i 0} {$i < 10} {incr i} {if {$i == 3} continue; \
     if {$i == 6} break; incr s $i}; set s";
    "set r {}; foreach i {1 2 3} {foreach j {a b} {if {$j == \"b\"} \
     continue; lappend r $i$j}}; set r";
    (* errors carry the original command text in the trace *)
    "proc inner {} {error boom}; proc outer {} {inner}; outer";
    "proc f {n} {expr {$n + }}; f 1";
    "set x [undefined_cmd]";
    "incr missingvar nonint";
    "proc f {a} {return $a}; f";
    "proc f {a} {return $a}; f 1 2";
    (* PR 7: per-interp recursion limits *)
    "interp recursionlimit 30; proc loop {} {loop}; loop";
    "interp recursionlimit 30; proc loop {} {loop}; list [catch loop m] $m";
    "interp recursionlimit 20; proc down {n} {if {$n == 0} {return done}; \
     down [expr {$n - 1}]}; set a [catch {down 100}]; interp recursionlimit \
     400; list $a [down 100]";
  ]

let differential_tests =
  List.map
    (fun s -> (Printf.sprintf "three tiers identical: %s" s, differential s))
    differential_scripts

(* ------------------------------------------------------------------ *)
(* PR 7 guard machinery under the VM: command budgets, time limits on an
   injected clock, and cancellation must trip at the same command with
   the same message on every tier (the guard spends one budget unit per
   executed command, so parity here proves the VM's command accounting
   matches the reference evaluator exactly). *)

let observe_command_limit mode =
  let tcl = new_interp mode in
  Tcl.Interp.set_command_limit tcl 50;
  let res = Tcl.Interp.eval tcl "set i 0; while 1 {incr i}" in
  Printf.sprintf "%s i=%s" (observation tcl res)
    (Option.value ~default:"?" (Tcl.Interp.get_var tcl "i"))

let observe_time_limit mode =
  let tcl = new_interp mode in
  let ticks = ref 0 in
  Tcl.Interp.set_limit_clock tcl
    (Some
       (fun () ->
         incr ticks;
         !ticks));
  Tcl.Interp.set_time_limit tcl 40;
  let res = Tcl.Interp.eval tcl "set i 0; while 1 {incr i}" in
  Printf.sprintf "%s i=%s" (observation tcl res)
    (Option.value ~default:"?" (Tcl.Interp.get_var tcl "i"))

let observe_cancel ~unwind mode =
  let tcl = new_interp mode in
  Tcl.Interp.register tcl "trip_cancel" (fun _ _ ->
      Tcl.Interp.cancel ~unwind tcl;
      (Tcl.Interp.Tcl_ok, ""));
  let script =
    if unwind then "set i 0; catch {while 1 {incr i; trip_cancel}} m; set m"
    else "set i 0; while 1 {incr i; trip_cancel}"
  in
  let res = Tcl.Interp.eval tcl script in
  Printf.sprintf "%s i=%s" (observation tcl res)
    (Option.value ~default:"?" (Tcl.Interp.get_var tcl "i"))

let guard_differential label observe_fn expect_msg () =
  let oracle = observe_fn Reference in
  check_bool
    (Printf.sprintf "%s: oracle reports %S (got %s)" label expect_msg oracle)
    true
    (let quoted = Printf.sprintf "%S" expect_msg in
     (* The message appears as the value field of the observation. *)
     let rec contains i =
       i + String.length quoted <= String.length oracle
       && (String.sub oracle i (String.length quoted) = quoted
          || contains (i + 1))
     in
     contains 0);
  List.iter
    (fun mode ->
      check_string
        (Printf.sprintf "%s: %s" label (mode_name mode))
        oracle (observe_fn mode))
    [ Treewalk; Vm ]

let guard_tests =
  [
    ( "command budget trips at the same command",
      guard_differential "command limit" observe_command_limit
        "command count limit exceeded" );
    ( "time limit trips at the same boundary",
      guard_differential "time limit" observe_time_limit "time limit exceeded"
    );
    ( "plain cancel lands at the same command",
      guard_differential "cancel" (observe_cancel ~unwind:false)
        "eval canceled" );
    ( "unwinding cancel escapes catch identically",
      guard_differential "cancel -unwind" (observe_cancel ~unwind:true)
        "eval unwound" );
  ]

(* ------------------------------------------------------------------ *)
(* tcl.vm.* counters: lowering, slot hits, deopt accounting, and the
   enable switch. *)

let vm_stat tcl key =
  match List.assoc_opt key (Tcl.Interp.vm_stats tcl) with
  | Some v -> v
  | None -> Alcotest.failf "no vm stat %S" key

let vm_stat_int tcl key = int_of_string (vm_stat tcl key)

let run tcl script =
  match Tcl.Interp.eval_value tcl script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let counter_tests =
  [
    ( "hot proc loop lowers code and serves variables from slots",
      fun () ->
        let tcl = new_interp Vm in
        ignore
          (run tcl
             "proc step {n} {expr {$n + 1}}\n\
              set i 0\n\
              while {$i < 100} {set i [step $i]}\n\
              set i");
        check_bool "programs were lowered" true (vm_stat_int tcl "compiled" > 0);
        check_bool "slot hits dominate" true
          (vm_stat_int tcl "slot_hits" > 100);
        check_string "vm reports enabled" "1" (vm_stat tcl "enabled") );
    ( "vm off runs the tree-walker and keeps counters at zero",
      fun () ->
        let tcl = new_interp Treewalk in
        check_string "loop still works" "100"
          (run tcl "set i 0; while {$i < 100} {incr i}; set i");
        check_int "nothing lowered" 0 (vm_stat_int tcl "compiled");
        check_int "no slot traffic" 0 (vm_stat_int tcl "slot_hits");
        check_string "vm reports disabled" "0" (vm_stat tcl "enabled") );
    ( "shadowing a core builtin flips canonical off and counts deopts",
      fun () ->
        let tcl = new_interp Vm in
        ignore (run tcl "set i 0; while {$i < 5} {incr i}");
        check_string "canonical while builtins are intact" "1"
          (vm_stat tcl "canonical");
        let before = vm_stat_int tcl "deopts" in
        (* The loop is already running as lowered code when iteration 3
           shadows [incr] with a double-stepping proc; the remaining
           iterations must deopt the inlined opcodes back to dispatch
           (so the shadow is honored: 1,2,3 then +2 steps to 5 and 7). *)
        check_string "mid-loop shadow is honored" "7"
          (run tcl
             "set n 0\n\
              while {$n < 6} {\n\
             \  incr n\n\
             \  if {$n == 3} {\n\
             \    rename incr incr_orig\n\
             \    proc incr {v} {upvar $v x; incr_orig x 2}\n\
             \  }\n\
              }\n\
              set n");
        check_string "shadowed builtin drops canonical" "0"
          (vm_stat tcl "canonical");
        check_bool "inlined opcodes deopted to dispatch" true
          (vm_stat_int tcl "deopts" > before);
        ignore (run tcl "rename incr {}");
        ignore (run tcl "rename incr_orig incr");
        check_string "restoring the builtin restores canonical" "1"
          (vm_stat tcl "canonical") );
    ( "reset_vm_stats clears the counters",
      fun () ->
        let tcl = new_interp Vm in
        ignore (run tcl "proc f {} {return 1}; f");
        check_bool "counters moved" true (vm_stat_int tcl "compiled" > 0);
        Tcl.Interp.reset_vm_stats tcl;
        check_int "compiled cleared" 0 (vm_stat_int tcl "compiled");
        check_int "slot hits cleared" 0 (vm_stat_int tcl "slot_hits") );
  ]

(* ------------------------------------------------------------------ *)
(* The counters surface through xstat / the metrics registry as
   tcl.vm.*, alongside tcl.compile.*. *)

let metrics_tests =
  [
    ( "xstat exposes the tcl.vm counters",
      fun () ->
        let server = Server.create () in
        let app =
          Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"xstatvm" ()
        in
        let run_app script =
          match Tcl.Interp.eval_value app.Tk.Core.interp script with
          | Ok v -> v
          | Error msg -> Alcotest.failf "script %S failed: %s" script msg
        in
        ignore (run_app "set i 0; while {$i < 50} {incr i}");
        check_string "enabled visible" "1"
          (run_app "xstat get tcl.vm.enabled");
        let hits = int_of_string (run_app "xstat get tcl.vm.slot_hits") in
        check_bool "slot hits visible and nonzero" true (hits > 0);
        ignore (run_app "xstat reset");
        (* Read slot_hits, not compiled: lowering the [xstat get ...]
           script itself bumps the compiled counter before the command
           reads it, while a variable-free script makes no slot traffic. *)
        check_string "reset clears vm counters" "0"
          (run_app "xstat get  tcl.vm.slot_hits") );
  ]

let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "vm"
    [
      ("differential", List.map (fun (n, f) -> tc n f) differential_tests);
      ("guards", List.map (fun (n, f) -> tc n f) guard_tests);
      ("counters", List.map (fun (n, f) -> tc n f) counter_tests);
      ("metrics", List.map (fun (n, f) -> tc n f) metrics_tests);
    ]
