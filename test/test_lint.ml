(* Tests for the static analyzer (lint.ml, the [lint] command and the
   signature registry behind them): a fixture corpus of seeded defects
   that must each be caught, a zero-false-positive sweep over known-good
   scripts (including examples/*.tcl), the non-execution guarantee, and
   the shared-usage-string contract between runtime and lint. *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_app ?(name = "lint") () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name () in
  (server, app)

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let run_err app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> Alcotest.failf "script %S unexpectedly succeeded: %s" script v
  | Error msg -> msg

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let lint app src = Tcl.Lint.analyze app.Tk.Core.interp src

let messages diags = List.map (fun d -> d.Tcl.Lint.message) diags

(* ------------------------------------------------------------------ *)
(* Seeded defects: each fixture is (name, script, expected substring).
   The analyzer must produce at least one diagnostic containing the
   substring. *)

let defect_fixtures =
  [
    ( "misspelled command name",
      "buton .b -text hi",
      "invalid command name \"buton\" (did you mean \"button\"?)" );
    ( "unknown configure option",
      "button .b -txt hi",
      "unknown option \"-txt\" (did you mean \"-text\"?)" );
    ("missing option value", "button .b -text", "value for \"-text\" missing");
    ("ambiguous option prefix", "button .b -fo x", "ambiguous option \"-fo\"");
    ( "set arity",
      "set",
      "wrong # args: should be \"set varName ?newValue?\"" );
    ( "lindex arity",
      "lindex {a b}",
      "wrong # args: should be \"lindex list index\"" );
    ("string bad subcommand", "string frobnicate x", "bad option \"frobnicate\"");
    ( "string subcommand arity",
      "string index abc",
      "wrong # args" );
    ( "array misspelled subcommand",
      "array nmaes a",
      "did you mean \"names\"" );
    ("info misspelled subcommand", "info exits foo", "did you mean \"exists\"");
    ( "use before set in a proc",
      "proc p {} {\n  puts $never\n}",
      "\"never\" may be used before being set in procedure \"p\"" );
    ( "dead code after return",
      "proc p {} {\n  return 1\n  puts x\n}",
      "unreachable command after \"return\"" );
    ( "dead code after error",
      "proc p {} {\n  error bad\n  puts x\n}",
      "unreachable command after \"error\"" );
    ( "dead code after break",
      "while 1 {\n  break\n  puts x\n}",
      "unreachable command after \"break\"" );
    ( "widget misspelled subcommand",
      "button .b\n.b confgure -text x",
      "bad option \"confgure\" for .b (did you mean \"configure\"?)" );
    ( "widget subcommand arity",
      "button .b\n.b invoke extra",
      "wrong # args for \".b invoke\"" );
    ( "widget cget arity",
      "button .b\n.b cget",
      "wrong # args: should be \".b cget option\"" );
    ( "widget cget unknown option",
      "button .b\n.b cget -nosuch",
      "unknown option \"-nosuch\"" );
    ( "bad binding event pattern",
      "button .b\nbind .b <Buton-1> {puts hi}",
      "bad event type or keysym" );
    ( "orphan widget path",
      "label .l.x -text hi",
      "bad window path name \".l.x\" (parent \".l\" is never created)" );
    ("wm misspelled subcommand", "wm titel . hi", "bad option \"titel\"");
    ("winfo misspelled subcommand", "winfo hieght .", "did you mean \"height\"");
    ( "proc called with too many args",
      "proc two {a b} {return $a}\ntwo 1 2 3",
      "called \"two\" with too many arguments" );
    ( "proc called with too few args",
      "proc two {a b} {return $a}\ntwo 1",
      "no value given for parameter \"b\" to \"two\"" );
    ( "listbox subcommand arity",
      "listbox .l\n.l get",
      "wrong # args for \".l get\"" );
    ( "scrollbar set arity",
      "scrollbar .s\n.s set 1 2",
      "wrong # args for \".s set\"" );
    ( "menu post arity",
      "menu .m\n.m post 5",
      "wrong # args for \".m post\"" );
    ( "pack misspelled subcommand",
      "button .b\npack appnd . .b {top}",
      "bad option \"appnd\"" );
    ( "option misspelled subcommand",
      "option ad Foo.bar baz",
      "bad option \"ad\"" );
    ( "bind arity",
      "button .b\nbind .b <Button-1> {puts hi} extra",
      "wrong # args" );
    ( "interp misspelled subcommand",
      "interp creat mini",
      "bad option \"creat\"" );
    ( "interp unknown -safe spelling",
      "interp create -saef mini",
      "bad option \"-saef\"" );
    ( "interp cancel unknown -unwind spelling",
      "interp cancel -unwnd mini",
      "bad option \"-unwnd\"" );
    ( "interp missing subcommand",
      "interp",
      "wrong # args" );
    ( "interp eval arity",
      "interp eval mini",
      "wrong # args" );
    ( "interp hide arity",
      "interp hide mini exit extra",
      "wrong # args" );
    ( "canvas misspelled subcommand",
      "canvas .c\n.c fnid overlapping 0 0 10 10",
      "bad option \"fnid\" for .c (did you mean \"find\"?)" );
    ( "canvas scale arity",
      "canvas .c\n.c scale all 0 0",
      "wrong # args for \".c scale\"" );
    ( "canvas gettags arity",
      "canvas .c\n.c gettags 1 extra",
      "wrong # args for \".c gettags\"" );
    ( "canvas addtag arity",
      "canvas .c\n.c addtag hot",
      "wrong # args for \".c addtag\"" );
  ]

let defect_tests =
  List.map
    (fun (name, script, needle) ->
      ( name,
        fun () ->
          let _, app = fresh_app () in
          let found = messages (lint app script) in
          if not (List.exists (contains ~needle) found) then
            Alcotest.failf "expected a diagnostic containing %S, got: %s"
              needle
              (String.concat " | " found) ))
    defect_fixtures

(* ------------------------------------------------------------------ *)
(* Known-good corpus: inline scripts in the style of the rest of the
   test suite and the paper's figures. Zero diagnostics allowed. *)

let clean_corpus =
  [
    "button .b -text go -command {set clicked 1}\npack append . .b {top}";
    "frame .f -width 60 -height 40\nbutton .f.b -text hi\n\
     pack append .f .f.b {top}";
    "proc greet {name} {return \"hi $name\"}\ngreet world";
    "proc f {} {\n  global x\n  set x 5\n  return $x\n}";
    "proc sum {} {\n  set total 0\n  foreach i {1 2 3} {incr total $i}\n\
     \  return $total\n}";
    "proc h {} {\n  upvar 1 y local\n  return $local\n}";
    "proc k {a} {\n  catch {incr missing}\n  return $a\n}";
    "set x 1\nif {$x} {puts yes} else {puts no}";
    "for {set i 0} {$i < 3} {incr i} {puts $i}";
    "listbox .l\n.l insert 0 a b c\n.l select from 0\n.l get 0";
    "entry .e\n.e insert 0 hello\n.e delete 0 2";
    "button .b\nbind .b <Control-q> {destroy .}";
    "menu .m\n.m add command -label Open -command {puts open}\n\
     .m add separator";
    "canvas .c\nset id [.c create line 0 0 10 10]\n.c move 1 5 5";
    "canvas .c\n.c create rectangle 0 0 20 20 -tags {box hot}\n\
     .c addtag warm withtag box\n.c dtag box hot\n.c gettags 1\n\
     .c find overlapping 0 0 5 5\n.c bbox box\n.c itemconfigure box -fill red\n\
     .c raise box\n.c lower box\n.c scale box 0 0 2.0 2.0\n.c delete box";
    "proc callback {} {puts pressed}\nbutton .b -command callback";
    "text .t\n.t insert 1.0 hello\n.t get 1.0 1.5";
    "scale .s\n.s set 5\n.s get";
    "scrollbar .sb\n.sb set 10 5 0 4\n.sb get";
    "wm title . Browser\nwm geometry . 80x24";
    "after 100 {puts tick}";
    "send otherApp {anything at all}";
    "set cmd puts\n$cmd hello";
    "set f /tmp\nif [file exists $f] {puts yes}";
    "main\nproc main {} {puts hi}";
    "proc unknown {args} {return \"\"}\nfrobnicate the args";
    "catch {exec ls /nonexistent} out\nputs $out";
    "proc varargs {a args} {return $a}\nvarargs 1 2 3 4";
    "interp create -safe mini\ninterp eval mini {set x 1}\n\
     interp delete mini";
    "interp create worker\nproc respond {q} {return yes}\n\
     interp alias worker ask {} respond\n\
     interp limit worker commands -value 1000\n\
     interp recursionlimit worker 500\ninterp cancel -unwind worker";
  ]

let clean_tests =
  List.mapi
    (fun i script ->
      ( Printf.sprintf "clean corpus #%d" (i + 1),
        fun () ->
          let _, app = fresh_app () in
          (* The corpus runs under wish, where the simulation commands
             exist; mirror that environment. *)
          List.iter
            (fun name ->
              Tcl.Interp.register_value app.Tk.Core.interp name (fun _ _ -> ""))
            [ "screendump"; "inject"; "serverstats"; "faultstats"; "crashtest" ];
          match messages (lint app script) with
          | [] -> ()
          | found ->
            Alcotest.failf "false positive on %S: %s" script
              (String.concat " | " found) ))
    clean_corpus

(* Every .tcl file under examples/ must lint clean (the CI gate runs the
   tclcheck binary over the same corpus). *)
let examples_sweep () =
  (* cwd is the test's build directory under [dune runtest], the
     workspace root under [dune exec]. *)
  let dir =
    if Sys.file_exists "../examples" then "../examples" else "examples"
  in
  let entries =
    match Sys.readdir dir with
    | entries -> Array.to_list entries
    | exception Sys_error msg -> Alcotest.failf "examples missing: %s" msg
  in
  let tcl = List.filter (fun e -> Filename.check_suffix e ".tcl") entries in
  check_bool "at least one example script" true (tcl <> []);
  List.iter
    (fun entry ->
      let _, app = fresh_app () in
      List.iter
        (fun name ->
          Tcl.Interp.register_value app.Tk.Core.interp name (fun _ _ -> ""))
        [ "screendump"; "inject"; "serverstats"; "faultstats"; "crashtest" ];
      let src =
        In_channel.with_open_text (Filename.concat dir entry)
          In_channel.input_all
      in
      match messages (lint app src) with
      | [] -> ()
      | found ->
        Alcotest.failf "false positive in %s: %s" entry
          (String.concat " | " found))
    tcl

(* Scripts from the rest of this test suite's style must also stay
   clean when linted through the [lint] Tcl command. *)
let lint_command_tests =
  [
    ( "lint returns diagnostics as a Tcl list",
      fun () ->
        let _, app = fresh_app () in
        let out = run app "lint {buton .b}" in
        check_bool "mentions invalid command" true
          (contains ~needle:"invalid command name" out);
        check_bool "has line and column" true (contains ~needle:"1 1" out) );
    ( "lint of a clean script returns empty",
      fun () ->
        let _, app = fresh_app () in
        check_string "no diagnostics" "" (run app "lint {set x 1}") );
    ( "lint arity",
      fun () ->
        let _, app = fresh_app () in
        let msg = run_err app "lint" in
        check_bool "usage" true (contains ~needle:"lint script" msg) );
  ]

(* ------------------------------------------------------------------ *)
(* The non-execution guarantee: linting a script performs no X requests
   and leaves no trace in the interpreter (no variables set, no widgets
   or procs created). *)

let non_execution_tests =
  [
    ( "lint executes nothing",
      fun () ->
        let _, app = fresh_app () in
        let requests_before =
          (Server.stats app.Tk.Core.conn).Server.total_requests
        in
        ignore
          (run app
             "lint {set foo 1\nbutton .zz -text hi\nproc ghost {} {}\nexit}");
        let requests_after =
          (Server.stats app.Tk.Core.conn).Server.total_requests
        in
        check_int "no X requests" requests_before requests_after;
        check_string "no variable set" "0" (run app "info exists foo");
        check_bool "no widget command created" false
          (Tcl.Interp.command_exists app.Tk.Core.interp ".zz");
        check_bool "no proc created" false
          (Tcl.Interp.command_exists app.Tk.Core.interp "ghost");
        (* And the interpreter still works normally afterwards. *)
        check_string "interp alive" "4" (run app "expr 2+2") );
  ]

(* ------------------------------------------------------------------ *)
(* Runtime and lint share one source of truth for messages. *)

let shared_message_tests =
  [
    ( "arity message matches the runtime word for word",
      fun () ->
        let _, app = fresh_app () in
        let runtime = run_err app "set" in
        match messages (lint app "set") with
        | [ linted ] -> check_string "same message" runtime linted
        | found ->
          Alcotest.failf "expected one diagnostic, got: %s"
            (String.concat " | " found) );
    ( "wm subcommand message matches the runtime",
      fun () ->
        let _, app = fresh_app () in
        let runtime = run_err app "wm titel . hi" in
        match messages (lint app "wm titel . hi") with
        | [ linted ] ->
          (* Lint appends a "did you mean" hint; the prefix is the
             runtime message verbatim. *)
          check_bool
            (Printf.sprintf "lint %S starts with runtime %S" linted runtime)
            true
            (String.length linted >= String.length runtime
            && String.sub linted 0 (String.length runtime) = runtime)
        | found ->
          Alcotest.failf "expected one diagnostic, got: %s"
            (String.concat " | " found) );
    ( "winfo subcommand message matches the runtime",
      fun () ->
        let _, app = fresh_app () in
        let runtime = run_err app "winfo hieght ." in
        check_bool "runtime routed through the registry" true
          (contains ~needle:"bad option \"hieght\": should be" runtime) );
    ( "proc arity message matches the runtime",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "proc two {a b} {return $a}");
        let runtime = run_err app "two 1" in
        match messages (lint app "proc two {a b} {return $a}\ntwo 1") with
        | [ linted ] -> check_string "same message" runtime linted
        | found ->
          Alcotest.failf "expected one diagnostic, got: %s"
            (String.concat " | " found) );
  ]

(* ------------------------------------------------------------------ *)
(* info complete and the lint counters. *)

let info_complete_tests =
  [
    ( "info complete on balanced script",
      fun () ->
        let _, app = fresh_app () in
        check_string "complete" "1" (run app "info complete {puts hi}") );
    ( "info complete on open brace",
      fun () ->
        let _, app = fresh_app () in
        check_string "incomplete" "0" (run app "info complete \"proc f \\{\"") );
    ( "info complete on open quote",
      fun () ->
        let _, app = fresh_app () in
        check_string "incomplete" "0"
          (run app "info complete {puts \"unclosed}") );
  ]

let metrics_tests =
  [
    ( "tcl.lint counters in the metrics registry",
      fun () ->
        let _, app = fresh_app () in
        check_string "runs start at zero" "0"
          (Option.get (Tk.Core.metric app "tcl.lint.runs"));
        ignore (run app "lint {buton .b}");
        ignore (run app "lint {set x 1}");
        check_string "two runs" "2"
          (Option.get (Tk.Core.metric app "tcl.lint.runs"));
        check_string "one error" "1"
          (Option.get (Tk.Core.metric app "tcl.lint.errors"));
        check_string "xstat sees them" "2" (run app "xstat get tcl.lint.runs");
        ignore (run app "xstat reset");
        check_string "reset" "0" (run app "xstat get tcl.lint.runs") );
  ]

let () =
  let wrap = List.map (fun (n, f) -> Alcotest.test_case n `Quick f) in
  Alcotest.run "lint"
    [
      ("seeded defects", wrap defect_tests);
      ("clean corpus", wrap clean_tests);
      ( "examples sweep",
        wrap [ ("every examples/*.tcl lints clean", examples_sweep) ] );
      ("lint command", wrap lint_command_tests);
      ("non-execution", wrap non_execution_tests);
      ("shared messages", wrap shared_message_tests);
      ("info complete", wrap info_complete_tests);
      ("metrics", wrap metrics_tests);
    ]
