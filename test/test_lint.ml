(* Tests for the static analyzer (lint.ml, the [lint] command and the
   signature registry behind them): a fixture corpus of seeded defects
   that must each be caught, a zero-false-positive sweep over known-good
   scripts (including examples/*.tcl), the non-execution guarantee, and
   the shared-usage-string contract between runtime and lint. *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_app ?(name = "lint") () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name () in
  (server, app)

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let run_err app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> Alcotest.failf "script %S unexpectedly succeeded: %s" script v
  | Error msg -> msg

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let lint app src = Tcl.Lint.analyze app.Tk.Core.interp src

let messages diags = List.map (fun d -> d.Tcl.Lint.message) diags

(* ------------------------------------------------------------------ *)
(* Seeded defects: each fixture is (name, script, expected substring).
   The analyzer must produce at least one diagnostic containing the
   substring. *)

let defect_fixtures =
  [
    ( "misspelled command name",
      "buton .b -text hi",
      "invalid command name \"buton\" (did you mean \"button\"?)" );
    ( "unknown configure option",
      "button .b -txt hi",
      "unknown option \"-txt\" (did you mean \"-text\"?)" );
    ("missing option value", "button .b -text", "value for \"-text\" missing");
    ("ambiguous option prefix", "button .b -fo x", "ambiguous option \"-fo\"");
    ( "set arity",
      "set",
      "wrong # args: should be \"set varName ?newValue?\"" );
    ( "lindex arity",
      "lindex {a b}",
      "wrong # args: should be \"lindex list index\"" );
    ("string bad subcommand", "string frobnicate x", "bad option \"frobnicate\"");
    ( "string subcommand arity",
      "string index abc",
      "wrong # args" );
    ( "array misspelled subcommand",
      "array nmaes a",
      "did you mean \"names\"" );
    ("info misspelled subcommand", "info exits foo", "did you mean \"exists\"");
    ( "use before set in a proc",
      "proc p {} {\n  puts $never\n}",
      "\"never\" may be used before being set in procedure \"p\"" );
    ( "dead code after return",
      "proc p {} {\n  return 1\n  puts x\n}",
      "unreachable command after \"return\"" );
    ( "dead code after error",
      "proc p {} {\n  error bad\n  puts x\n}",
      "unreachable command after \"error\"" );
    ( "dead code after break",
      "while 1 {\n  break\n  puts x\n}",
      "unreachable command after \"break\"" );
    ( "widget misspelled subcommand",
      "button .b\n.b confgure -text x",
      "bad option \"confgure\" for .b (did you mean \"configure\"?)" );
    ( "widget subcommand arity",
      "button .b\n.b invoke extra",
      "wrong # args for \".b invoke\"" );
    ( "widget cget arity",
      "button .b\n.b cget",
      "wrong # args: should be \".b cget option\"" );
    ( "widget cget unknown option",
      "button .b\n.b cget -nosuch",
      "unknown option \"-nosuch\"" );
    ( "bad binding event pattern",
      "button .b\nbind .b <Buton-1> {puts hi}",
      "bad event type or keysym" );
    ( "orphan widget path",
      "label .l.x -text hi",
      "bad window path name \".l.x\" (parent \".l\" is never created)" );
    ("wm misspelled subcommand", "wm titel . hi", "bad option \"titel\"");
    ("winfo misspelled subcommand", "winfo hieght .", "did you mean \"height\"");
    ( "proc called with too many args",
      "proc two {a b} {return $a}\ntwo 1 2 3",
      "called \"two\" with too many arguments" );
    ( "proc called with too few args",
      "proc two {a b} {return $a}\ntwo 1",
      "no value given for parameter \"b\" to \"two\"" );
    ( "listbox subcommand arity",
      "listbox .l\n.l get",
      "wrong # args for \".l get\"" );
    ( "scrollbar set arity",
      "scrollbar .s\n.s set 1 2",
      "wrong # args for \".s set\"" );
    ( "menu post arity",
      "menu .m\n.m post 5",
      "wrong # args for \".m post\"" );
    ( "pack misspelled subcommand",
      "button .b\npack appnd . .b {top}",
      "bad option \"appnd\"" );
    ( "option misspelled subcommand",
      "option ad Foo.bar baz",
      "bad option \"ad\"" );
    ( "bind arity",
      "button .b\nbind .b <Button-1> {puts hi} extra",
      "wrong # args" );
    ( "interp misspelled subcommand",
      "interp creat mini",
      "bad option \"creat\"" );
    ( "interp unknown -safe spelling",
      "interp create -saef mini",
      "bad option \"-saef\"" );
    ( "interp cancel unknown -unwind spelling",
      "interp cancel -unwnd mini",
      "bad option \"-unwnd\"" );
    ( "interp missing subcommand",
      "interp",
      "wrong # args" );
    ( "interp eval arity",
      "interp eval mini",
      "wrong # args" );
    ( "interp hide arity",
      "interp hide mini exit extra",
      "wrong # args" );
    ( "canvas misspelled subcommand",
      "canvas .c\n.c fnid overlapping 0 0 10 10",
      "bad option \"fnid\" for .c (did you mean \"find\"?)" );
    ( "canvas scale arity",
      "canvas .c\n.c scale all 0 0",
      "wrong # args for \".c scale\"" );
    ( "canvas gettags arity",
      "canvas .c\n.c gettags 1 extra",
      "wrong # args for \".c gettags\"" );
    ( "canvas addtag arity",
      "canvas .c\n.c addtag hot",
      "wrong # args for \".c addtag\"" );
  ]

let defect_tests =
  List.map
    (fun (name, script, needle) ->
      ( name,
        fun () ->
          let _, app = fresh_app () in
          let found = messages (lint app script) in
          if not (List.exists (contains ~needle) found) then
            Alcotest.failf "expected a diagnostic containing %S, got: %s"
              needle
              (String.concat " | " found) ))
    defect_fixtures

(* ------------------------------------------------------------------ *)
(* Known-good corpus: inline scripts in the style of the rest of the
   test suite and the paper's figures. Zero diagnostics allowed. *)

let clean_corpus =
  [
    "button .b -text go -command {set clicked 1}\npack append . .b {top}";
    "frame .f -width 60 -height 40\nbutton .f.b -text hi\n\
     pack append .f .f.b {top}";
    "proc greet {name} {return \"hi $name\"}\ngreet world";
    "proc f {} {\n  global x\n  set x 5\n  return $x\n}";
    "proc sum {} {\n  set total 0\n  foreach i {1 2 3} {incr total $i}\n\
     \  return $total\n}";
    "proc h {} {\n  upvar 1 y local\n  return $local\n}";
    "proc k {a} {\n  catch {incr missing}\n  return $a\n}";
    "set x 1\nif {$x} {puts yes} else {puts no}";
    "for {set i 0} {$i < 3} {incr i} {puts $i}";
    "listbox .l\n.l insert 0 a b c\n.l select from 0\n.l get 0";
    "entry .e\n.e insert 0 hello\n.e delete 0 2";
    "button .b\nbind .b <Control-q> {destroy .}";
    "menu .m\n.m add command -label Open -command {puts open}\n\
     .m add separator";
    "canvas .c\nset id [.c create line 0 0 10 10]\n.c move 1 5 5";
    "canvas .c\n.c create rectangle 0 0 20 20 -tags {box hot}\n\
     .c addtag warm withtag box\n.c dtag box hot\n.c gettags 1\n\
     .c find overlapping 0 0 5 5\n.c bbox box\n.c itemconfigure box -fill red\n\
     .c raise box\n.c lower box\n.c scale box 0 0 2.0 2.0\n.c delete box";
    "proc callback {} {puts pressed}\nbutton .b -command callback";
    "text .t\n.t insert 1.0 hello\n.t get 1.0 1.5";
    "scale .s\n.s set 5\n.s get";
    "scrollbar .sb\n.sb set 10 5 0 4\n.sb get";
    "wm title . Browser\nwm geometry . 80x24";
    "after 100 {puts tick}";
    "send otherApp {anything at all}";
    "set cmd puts\n$cmd hello";
    "set f /tmp\nif [file exists $f] {puts yes}";
    "main\nproc main {} {puts hi}";
    "proc unknown {args} {return \"\"}\nfrobnicate the args";
    "catch {exec ls /nonexistent} out\nputs $out";
    "proc varargs {a args} {return $a}\nvarargs 1 2 3 4";
    "interp create -safe mini\ninterp eval mini {set x 1}\n\
     interp delete mini";
    "interp create worker\nproc respond {q} {return yes}\n\
     interp alias worker ask {} respond\n\
     interp limit worker commands -value 1000\n\
     interp recursionlimit worker 500\ninterp cancel -unwind worker";
  ]

let clean_tests =
  List.mapi
    (fun i script ->
      ( Printf.sprintf "clean corpus #%d" (i + 1),
        fun () ->
          let _, app = fresh_app () in
          (* The corpus runs under wish, where the simulation commands
             exist; mirror that environment. *)
          List.iter
            (fun name ->
              Tcl.Interp.register_value app.Tk.Core.interp name (fun _ _ -> ""))
            [ "screendump"; "inject"; "serverstats"; "faultstats"; "crashtest" ];
          match messages (lint app script) with
          | [] -> ()
          | found ->
            Alcotest.failf "false positive on %S: %s" script
              (String.concat " | " found) ))
    clean_corpus

(* Every .tcl file under examples/ must lint clean (the CI gate runs the
   tclcheck binary over the same corpus). *)
let examples_sweep () =
  (* cwd is the test's build directory under [dune runtest], the
     workspace root under [dune exec]. *)
  let dir =
    if Sys.file_exists "../examples" then "../examples" else "examples"
  in
  let entries =
    match Sys.readdir dir with
    | entries -> Array.to_list entries
    | exception Sys_error msg -> Alcotest.failf "examples missing: %s" msg
  in
  let tcl = List.filter (fun e -> Filename.check_suffix e ".tcl") entries in
  check_bool "at least one example script" true (tcl <> []);
  List.iter
    (fun entry ->
      let _, app = fresh_app () in
      List.iter
        (fun name ->
          Tcl.Interp.register_value app.Tk.Core.interp name (fun _ _ -> ""))
        [ "screendump"; "inject"; "serverstats"; "faultstats"; "crashtest" ];
      let src =
        In_channel.with_open_text (Filename.concat dir entry)
          In_channel.input_all
      in
      match messages (lint app src) with
      | [] -> ()
      | found ->
        Alcotest.failf "false positive in %s: %s" entry
          (String.concat " | " found))
    tcl

(* Scripts from the rest of this test suite's style must also stay
   clean when linted through the [lint] Tcl command. *)
let lint_command_tests =
  [
    ( "lint returns diagnostics as a Tcl list",
      fun () ->
        let _, app = fresh_app () in
        let out = run app "lint {buton .b}" in
        check_bool "mentions invalid command" true
          (contains ~needle:"invalid command name" out);
        check_bool "has line and column" true (contains ~needle:"1 1" out) );
    ( "lint of a clean script returns empty",
      fun () ->
        let _, app = fresh_app () in
        check_string "no diagnostics" "" (run app "lint {set x 1}") );
    ( "lint arity",
      fun () ->
        let _, app = fresh_app () in
        let msg = run_err app "lint" in
        check_bool "usage" true
          (contains ~needle:"lint ?-safe? ?-seed? script" msg) );
  ]

(* ------------------------------------------------------------------ *)
(* The non-execution guarantee: linting a script performs no X requests
   and leaves no trace in the interpreter (no variables set, no widgets
   or procs created). *)

let non_execution_tests =
  [
    ( "lint executes nothing",
      fun () ->
        let _, app = fresh_app () in
        let requests_before =
          (Server.stats app.Tk.Core.conn).Server.total_requests
        in
        ignore
          (run app
             "lint {set foo 1\nbutton .zz -text hi\nproc ghost {} {}\nexit}");
        let requests_after =
          (Server.stats app.Tk.Core.conn).Server.total_requests
        in
        check_int "no X requests" requests_before requests_after;
        check_string "no variable set" "0" (run app "info exists foo");
        check_bool "no widget command created" false
          (Tcl.Interp.command_exists app.Tk.Core.interp ".zz");
        check_bool "no proc created" false
          (Tcl.Interp.command_exists app.Tk.Core.interp "ghost");
        (* And the interpreter still works normally afterwards. *)
        check_string "interp alive" "4" (run app "expr 2+2") );
  ]

(* ------------------------------------------------------------------ *)
(* Runtime and lint share one source of truth for messages. *)

let shared_message_tests =
  [
    ( "arity message matches the runtime word for word",
      fun () ->
        let _, app = fresh_app () in
        let runtime = run_err app "set" in
        match messages (lint app "set") with
        | [ linted ] -> check_string "same message" runtime linted
        | found ->
          Alcotest.failf "expected one diagnostic, got: %s"
            (String.concat " | " found) );
    ( "wm subcommand message matches the runtime",
      fun () ->
        let _, app = fresh_app () in
        let runtime = run_err app "wm titel . hi" in
        match messages (lint app "wm titel . hi") with
        | [ linted ] ->
          (* Lint appends a "did you mean" hint; the prefix is the
             runtime message verbatim. *)
          check_bool
            (Printf.sprintf "lint %S starts with runtime %S" linted runtime)
            true
            (String.length linted >= String.length runtime
            && String.sub linted 0 (String.length runtime) = runtime)
        | found ->
          Alcotest.failf "expected one diagnostic, got: %s"
            (String.concat " | " found) );
    ( "winfo subcommand message matches the runtime",
      fun () ->
        let _, app = fresh_app () in
        let runtime = run_err app "winfo hieght ." in
        check_bool "runtime routed through the registry" true
          (contains ~needle:"bad option \"hieght\": should be" runtime) );
    ( "proc arity message matches the runtime",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "proc two {a b} {return $a}");
        let runtime = run_err app "two 1" in
        match messages (lint app "proc two {a b} {return $a}\ntwo 1") with
        | [ linted ] -> check_string "same message" runtime linted
        | found ->
          Alcotest.failf "expected one diagnostic, got: %s"
            (String.concat " | " found) );
  ]

(* ------------------------------------------------------------------ *)
(* info complete and the lint counters. *)

let info_complete_tests =
  [
    ( "info complete on balanced script",
      fun () ->
        let _, app = fresh_app () in
        check_string "complete" "1" (run app "info complete {puts hi}") );
    ( "info complete on open brace",
      fun () ->
        let _, app = fresh_app () in
        check_string "incomplete" "0" (run app "info complete \"proc f \\{\"") );
    ( "info complete on open quote",
      fun () ->
        let _, app = fresh_app () in
        check_string "incomplete" "0"
          (run app "info complete {puts \"unclosed}") );
  ]

let metrics_tests =
  [
    ( "tcl.lint counters in the metrics registry",
      fun () ->
        let _, app = fresh_app () in
        check_string "runs start at zero" "0"
          (Option.get (Tk.Core.metric app "tcl.lint.runs"));
        ignore (run app "lint {buton .b}");
        ignore (run app "lint {set x 1}");
        check_string "two runs" "2"
          (Option.get (Tk.Core.metric app "tcl.lint.runs"));
        check_string "one error" "1"
          (Option.get (Tk.Core.metric app "tcl.lint.errors"));
        check_string "xstat sees them" "2" (run app "xstat get tcl.lint.runs");
        ignore (run app "xstat reset");
        check_string "reset" "0" (run app "xstat get tcl.lint.runs") );
  ]

(* ------------------------------------------------------------------ *)
(* The whole-program tier (PR 10): call graph, abstract interpretation
   and the -safe capability checker.  [analyze_program ~whole:true] is
   what tclcheck runs; script-local [analyze] must never produce the
   whole-program-only reports. *)

let lint_whole ?(safe = false) app src =
  let out =
    Tcl.Lint.analyze_program ~safe ~whole:true app.Tk.Core.interp
      [ (Some "test.tcl", src) ]
  in
  List.map (fun (_, d) -> d.Tcl.Lint.message) out.Tcl.Lint.o_diags

(* Each fixture: (name, safe?, script, expected substring). *)
let whole_defect_fixtures =
  [
    ( "unreachable procedure",
      false,
      "proc orphan {} {return 1}\nputs hi",
      "procedure \"orphan\" is defined but never called" );
    ( "direct infinite recursion",
      false,
      "proc loopy {} {loopy}\nloopy",
      "\"loopy\" unconditionally calls \"loopy\": infinite recursion is \
       guaranteed" );
    ( "mutual infinite recursion",
      false,
      "proc ping {} {pong}\nproc pong {} {ping}\nping",
      "infinite recursion is guaranteed" );
    ( "divide by zero in expr",
      false,
      "set x [expr {1 / 0}]",
      "divide by zero" );
    ( "divide by zero through a constant variable",
      false,
      "set d 0\nexpr {10 / $d}",
      "divide by zero" );
    ( "mod by zero",
      false,
      "expr {5 % 0}",
      "divide by zero" );
    ( "float fed to an integer operator",
      false,
      "expr {1.5 % 2}",
      "expected integer but got \"1.5\"" );
    ( "non-numeric operand",
      false,
      "expr {\"abc\" + 1}",
      "expected number but got \"abc\"" );
    ( "non-boolean constant condition",
      false,
      "if {\"xyz\"} {puts hi}",
      "expected boolean value but got \"xyz\"" );
    ( "incr of a constant string",
      false,
      "set s hello\nincr s",
      "expected integer but got \"hello\" (reading value of variable \"s\" \
       to increment)" );
    ( "incr with a non-integer increment",
      false,
      "set i 0\nincr i 1.5",
      "expected integer but got \"1.5\" (reading increment)" );
    ( "incr of a kind that survives an unrelated branch",
      false,
      "set x ok\nif {[info exists y]} {puts maybe}\nincr x",
      "expected integer but got \"ok\"" );
    ( "constant lindex out of range",
      false,
      "lindex {a b c} 5",
      "constant index 5 is out of range for this 3-element list" );
    ( "dead code after a constant-true while",
      false,
      "while 1 {set spin 1}\nputs x",
      "unreachable command after \"while\"" );
    ( "dead code after an if whose arms all return",
      false,
      "proc p {x} {\n  if {$x} {return 1} else {return 0}\n  puts x\n}\np 1",
      "unreachable command after \"if\"" );
    ( "interprocedural use-before-set via upvar",
      false,
      "proc reader {} {\n  upvar 1 q local\n  puts $local\n}\n\
       proc caller {} {reader}\ncaller",
      "\"q\" may be used before being set in procedure \"caller\" (read via \
       upvar by \"reader\")" );
    ( "safe: direct hidden command",
      true,
      "exec ls",
      "hidden command \"exec\" would be denied in a safe interpreter" );
    ( "safe: hidden command inside a reachable proc",
      true,
      "proc cleanup {} {exec rm -f /tmp/x}\ncleanup",
      "hidden command \"exec\" would be denied in a safe interpreter" );
    ( "safe: aliased hidden command",
      true,
      "interp alias {} bye {} exit\nproc q {} {bye}\nq",
      "\"bye\" is an alias for hidden command \"exit\" and would be denied \
       in a safe interpreter" );
    ( "safe: hidden command under constant eval",
      true,
      "eval {exec ls}",
      "hidden command \"exec\" would be denied in a safe interpreter" );
    ( "safe: hidden command in a deferred after script",
      true,
      "proc attack {} {exit 7}\nafter 10 attack",
      "hidden command \"exit\" would be denied in a safe interpreter" );
    ( "send misspelled subcommand",
      false,
      "send wiat h",
      "\"wiat\" is not a send subcommand (did you mean \"wait\"?)" );
    ( "send misspelled option",
      false,
      "send -asinc calc {set x 1}",
      "bad option \"-asinc\"" );
    ( "send wait arity",
      false,
      "send wait",
      "wrong # args: should be \"send" );
    ( "send result misspelling",
      false,
      "send reslut h",
      "did you mean \"result\"" );
  ]

let whole_defect_tests =
  List.map
    (fun (name, safe, script, needle) ->
      ( name,
        fun () ->
          let _, app = fresh_app () in
          let found = lint_whole ~safe app script in
          if not (List.exists (contains ~needle) found) then
            Alcotest.failf "expected a diagnostic containing %S, got: %s"
              needle
              (String.concat " | " found) ))
    whole_defect_fixtures

(* Whole-program mode must stay quiet on these: reachability through
   mentions (callbacks, aliases), conditional recursion, terminators
   that only may fire, and hidden commands in provably dead code. *)
let whole_clean_fixtures =
  [
    ( "callback reference keeps a proc reachable",
      false,
      "proc cb {} {puts pressed}\nbutton .b -command cb" );
    ( "conditional recursion is not infinite recursion",
      false,
      "proc fact {n} {\n  if {$n < 2} {return 1}\n\
       \  return [expr $n * [fact [expr $n - 1]]]\n}\nfact 5" );
    ( "catch of an error does not kill the rest of the script",
      false,
      "catch {error boom}\nputs ok" );
    ( "a constant-false branch does not kill the rest of the script",
      false,
      "if {0} {error boom}\nputs ok" );
    ( "a loop body break does not kill code after the loop",
      false,
      "while 1 {\n  break\n}\nputs ok" );
    ( "safe: hidden command in an unreported dead branch",
      true,
      "if {0} {exec ls}\nputs ok" );
    ( "alias target mention keeps the proc live",
      false,
      "interp create worker\nproc respond {q} {return yes}\n\
       interp alias worker ask {} respond\ninterp delete worker" );
    ( "kinds reset across unknown branches",
      false,
      "set x 1\nif {[info exists y]} {set x hello}\nputs $x" );
  ]

let whole_clean_tests =
  List.map
    (fun (name, safe, script) ->
      ( name,
        fun () ->
          let _, app = fresh_app () in
          match lint_whole ~safe app script with
          | [] -> ()
          | found ->
            Alcotest.failf "false positive on %S: %s" script
              (String.concat " | " found) ))
    whole_clean_fixtures

(* Script-local [analyze] (the [lint] command, in-editor use) must not
   produce whole-program-only reports: a lone fragment defining helpers
   it never calls is normal. *)
let scope_tests =
  [
    ( "analyze does not report unreachable procs",
      fun () ->
        let _, app = fresh_app () in
        match messages (lint app "proc helper {} {return 1}") with
        | [] -> ()
        | found ->
          Alcotest.failf "script-local analyze leaked whole-program \
                          reports: %s"
            (String.concat " | " found) );
    ( "multi-file: procs resolve across files",
      fun () ->
        let _, app = fresh_app () in
        let out =
          Tcl.Lint.analyze_program ~whole:true app.Tk.Core.interp
            [
              (Some "lib.tcl", "proc two {a b} {return $a}");
              (Some "main.tcl", "two 1 2 3");
            ]
        in
        let arity =
          List.filter
            (fun (f, d) ->
              f = Some "main.tcl"
              && contains ~needle:"called \"two\" with too many arguments"
                   d.Tcl.Lint.message)
            out.Tcl.Lint.o_diags
        in
        check_int "arity error attributed to the calling file" 1
          (List.length arity);
        check_bool "call graph saw the cross-file edge" true
          (out.Tcl.Lint.o_edges > 0);
        check_int "both procs counted" 1 out.Tcl.Lint.o_procs );
    ( "kind facts are proven for canonical numeric procs",
      fun () ->
        let _, app = fresh_app () in
        let out =
          Tcl.Lint.analyze_program ~whole:true app.Tk.Core.interp
            [
              ( None,
                "proc fib {n} {\n\
                 \  if {$n < 2} {return $n}\n\
                 \  return [expr [fib [expr $n - 1]] + [fib [expr $n - 2]]]\n\
                 }\n\
                 fib 10" );
            ]
        in
        match List.assoc_opt "fib" out.Tcl.Lint.o_facts with
        | Some [ ("n", Tcl.Vm.Kint) ] -> ()
        | Some other ->
          Alcotest.failf "unexpected facts for fib: %d" (List.length other)
        | None -> Alcotest.fail "no kind facts proven for fib" );
  ]

(* lint -safe over PR 7's hostile storm scripts: every hidden
   invocation reported, nothing executed, the interpreter unharmed. *)
let safe_non_execution_tests =
  [
    ( "lint -safe executes nothing on a hostile script",
      fun () ->
        let _, app = fresh_app () in
        let out =
          run app
            "lint -safe {proc attack {} {exit 7}\nafter 10 attack\n\
             while 1 {after 1}}"
        in
        check_bool "exit flagged" true
          (contains ~needle:"hidden command \"exit\"" out);
        check_string "interp alive afterwards" "4" (run app "expr 2+2") );
    ( "lint -safe flags an aliased hidden command without executing",
      fun () ->
        let _, app = fresh_app () in
        let out =
          run app "lint -safe {interp alias {} leave {} exit\nleave}"
        in
        check_bool "alias flagged" true
          (contains
             ~needle:"\"leave\" is an alias for hidden command \"exit\"" out);
        check_bool "no alias actually created" false
          (Tcl.Interp.command_exists app.Tk.Core.interp "leave") );
    ( "lint -seed installs VM kind seeds",
      fun () ->
        let _, app = fresh_app () in
        ignore
          (run app
             "proc double {n} {return [expr $n * 2]}\n\
              lint -seed {proc double {n} {return [expr $n * 2]}\ndouble 21}");
        check_string "seed applied on next lowering" "42" (run app "double 21");
        check_string "seeded counter" "1" (run app "xstat get tcl.vm.seeded") );
  ]

let () =
  let wrap = List.map (fun (n, f) -> Alcotest.test_case n `Quick f) in
  Alcotest.run "lint"
    [
      ("seeded defects", wrap defect_tests);
      ("clean corpus", wrap clean_tests);
      ( "examples sweep",
        wrap [ ("every examples/*.tcl lints clean", examples_sweep) ] );
      ("lint command", wrap lint_command_tests);
      ("non-execution", wrap non_execution_tests);
      ("whole-program defects", wrap whole_defect_tests);
      ("whole-program clean", wrap whole_clean_tests);
      ("analysis scope", wrap scope_tests);
      ("safe and seed", wrap safe_non_execution_tests);
      ("shared messages", wrap shared_message_tests);
      ("info complete", wrap info_complete_tests);
      ("metrics", wrap metrics_tests);
    ]
